#include "measure/warm.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dns/wire.h"
#include "resolver/stub.h"
#include "transport/http.h"
#include "transport/tcp.h"

namespace dohperf::measure {
namespace {

using netsim::NetCtx;
using netsim::SimTime;
using netsim::Site;
using netsim::Task;
using netsim::ms_between;
using ScopedSpan = dohperf::obs::ScopedSpan;
using ScopedPhase = dohperf::obs::ScopedPhase;
using ScopedDnsRedirect = dohperf::obs::ScopedDnsRedirect;
using FlowAttributionScope = dohperf::obs::FlowAttributionScope;
using Phase = dohperf::obs::Phase;

/// Client-local (OS/browser) stub cache capacity. Tiny on purpose: a
/// session only ever touches the head of the popularity catalog.
constexpr std::size_t kStubCacheEntries = 512;

/// A deterministic address for popularity rank `r` (content of the
/// synthesized answers; never routed on).
std::uint32_t rank_address(std::size_t r) {
  return 0x0A000000u + static_cast<std::uint32_t>(r & 0xFFFFFFu);
}

/// The answer the shared cache would serve for `name` at `ttl` seconds
/// of remaining lifetime.
dns::Message cached_answer(const dns::Message& query,
                           const dns::DomainName& name, std::uint32_t ttl,
                           std::size_t rank) {
  dns::Message answer = dns::Message::make_response(query);
  answer.answers.push_back(dns::ResourceRecord{
      name, dns::RecordClass::kIn, ttl, dns::ARecord{rank_address(rank)}});
  return answer;
}

std::uint32_t remaining_ttl(double ttl_s, double age_s) {
  const double left = ttl_s - age_s;
  return left > 0.0 ? static_cast<std::uint32_t>(left) : 0u;
}

}  // namespace

Task<WarmPathObservation> doh_warm_path(NetCtx& net, WarmDohParams params) {
  WarmPathObservation obs;
  const Site pop = params.doh->site();
  if (net.metrics != nullptr) ++net.metrics->counters.doh_queries;
  ScopedSpan flow_span = net.span("doh_warm_path");

  client::ConnectionPool pool(params.reuse.pool);
  dns::Cache stub_cache(kStubCacheEntries);
  const double think_ms = netsim::to_ms(params.reuse.think_time);
  const double ttl_s =
      params.cache != nullptr ? params.cache->config().ttl_s : 0.0;

  // The actual transports live here so they survive loop iterations; a
  // TlsSession references its lower connection, so it resets first.
  std::optional<transport::TcpConnection> tcp;
  std::optional<transport::TlsSession> tls;

  const int n = std::max(1, params.reuse.queries_per_session);
  for (int i = 0; i < n; ++i) {
    // One direct child of the root per query iteration (think time
    // included): consecutive spans abut, so the children tile the root
    // exactly and tools/trace_inspect's phase-sum check passes on
    // warm-path traces too.
    const ScopedSpan warm_query_span = net.span("warm_query");
    if (i > 0 && think_ms > 0.0) {
      co_await net.process(netsim::from_ms(net.rng.exponential(think_ms)));
    }
    WarmQueryObservation q;
    q.query_index = i;

    // Popularity draw; without a model every query is a full recursion.
    resolver::SharedCacheLookup look;
    if (params.cache != nullptr) {
      look = params.cache->sample(net.rng, params.population);
    }
    const dns::DomainName name = params.origin.with_subdomain(
        "popular-" + std::to_string(look.rank));

    // Client-local cache first: a hit never touches the network (and
    // does not consume the connection).
    if (params.cache != nullptr &&
        stub_cache.lookup(net.sim.now(), name, dns::RecordType::kA)) {
      q.stub_hit = true;
      q.ms = 0.0;
      if (net.metrics != nullptr) ++net.metrics->counters.stub_cache_hits;
      obs.queries.push_back(q);
      continue;
    }

    // The clock starts before any connection work, so query 0 (and any
    // query that has to reconnect) prices its own setup. Each query is
    // its own attributed flow — index 0 (always cold) separates from the
    // warm remainder, and the pool outcome decides which handshake phase
    // the setup lands in (cold: tcp+tls handshake, resume: tls_resume,
    // reuse: neither).
    const SimTime start = net.sim.now();
    FlowAttributionScope attr_scope(net.attribution, net.sim,
                                    i == 0 ? "doh_warm_first" : "doh_warm");
    const client::Acquire how =
        pool.acquire(params.doh_hostname, net.sim.now());
    if (how == client::Acquire::kReuse) {
      q.connection_reused = true;
    } else {
      tls.reset();
      tcp.reset();
      if (how == client::Acquire::kCold) {
        // Bootstrap the resolver's address (a hot name — normally a
        // cache hit at the default resolver). Attribution-wise the
        // lookup is connection bootstrap, so it lands in the TCP
        // handshake phase it gates rather than in the DNS phases.
        const ScopedDnsRedirect boot_attr(net.attribution,
                                          Phase::kTcpHandshake);
        const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
        const resolver::StubResult boot = co_await resolver::stub_resolve(
            net, params.vantage, *params.default_resolver,
            dns::Message::make_query(
                id, dns::DomainName::parse(params.doh_hostname)));
        if (!boot.ok()) {
          obs.queries.push_back(q);
          obs.pool = pool.stats();
          co_return obs;
        }
      }
      tcp.emplace(co_await transport::tcp_connect(net, params.vantage, pop));
      if (!tcp->established) {
        obs.queries.push_back(q);
        obs.pool = pool.stats();
        co_return obs;
      }
      if (how == client::Acquire::kResume) {
        q.session_resumed = true;
        tls.emplace(co_await transport::tls_resume(*tcp, params.tls));
      } else {
        tls.emplace(co_await transport::tls_handshake(*tcp, params.tls));
      }
      if (!tls->established) {
        obs.queries.push_back(q);
        obs.pool = pool.stats();
        co_return obs;
      }
      pool.established(params.doh_hostname, net.sim.now());
    }

    const ScopedSpan query_span = net.span("doh_warm_exchange");
    if (params.cache != nullptr && look.hit) {
      // The whole hit exchange counts as cache-hit resolution time (the
      // frontend's compute carves itself out via process_at below).
      const ScopedPhase hit_attr = net.phase(Phase::kDnsCacheHit);
      // Shared-cache hit: the frontend answers without recursing,
      // priced exactly like RecursiveResolver's real hit path. The
      // answer is synthesized (TTL decayed to the record's sampled age)
      // instead of routed through the shard's resolver, whose mutable
      // cache state must never couple sessions.
      const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
      const dns::Message query = dns::Message::make_query(id, name);
      transport::HttpRequest req;
      req.method = "GET";
      req.target = resolver::doh_get_target(query);
      req.headers.add("host", params.doh_hostname);
      co_await tls->send(req);
      co_await net.process_at(pop, params.doh->resolver().cache_hit_cost());
      const dns::Message answer = cached_answer(
          query, name, remaining_ttl(ttl_s, look.age_s), look.rank);
      const std::vector<std::uint8_t> body_wire = dns::encode(answer);
      transport::HttpResponse resp;
      resp.status = 200;
      resp.reason = "OK";
      resp.headers.add("content-type", "application/dns-message");
      resp.headers.add("server", params.doh_hostname);
      resp.body.assign(body_wire.begin(), body_wire.end());
      resp.headers.add("content-length", std::to_string(resp.body.size()));
      co_await tls->recv(resp);
      q.shared_hit = true;
      if (net.metrics != nullptr) ++net.metrics->counters.shared_cache_hits;
      stub_cache.insert(net.sim.now(), name, dns::RecordType::kA,
                        answer.answers);
    } else {
      // Miss (or no model): full recursion. The wire query is a unique
      // cache-buster so the shard-local resolver cache stays out of the
      // outcome — the popular `name` only lives in this session's stub.
      const dns::Message query =
          resolver::make_probe_query(net.rng, params.origin);
      transport::HttpRequest req;
      req.method = "GET";
      req.target = resolver::doh_get_target(query);
      req.headers.add("host", params.doh_hostname);
      co_await tls->send(req);
      const transport::HttpResponse resp =
          co_await params.doh->handle(net, req);
      co_await tls->recv(resp);
      if (resp.status != 200) {
        obs.queries.push_back(q);
        obs.pool = pool.stats();
        co_return obs;
      }
      if (params.cache != nullptr) {
        if (net.metrics != nullptr) {
          ++net.metrics->counters.shared_cache_misses;
        }
        const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
        stub_cache.insert(
            net.sim.now(), name, dns::RecordType::kA,
            cached_answer(dns::Message::make_query(id, name), name,
                          static_cast<std::uint32_t>(ttl_s), look.rank)
                .answers);
      }
    }
    pool.touch(params.doh_hostname, net.sim.now());
    q.ms = ms_between(start, net.sim.now());
    obs.queries.push_back(q);
  }

  obs.ok = true;
  obs.pool = pool.stats();
  co_return obs;
}

Task<WarmPathObservation> do53_warm_path(NetCtx& net,
                                         WarmDo53Params params) {
  WarmPathObservation obs;
  if (net.metrics != nullptr) ++net.metrics->counters.do53_queries;
  ScopedSpan flow_span = net.span("do53_warm_path");

  dns::Cache stub_cache(kStubCacheEntries);
  const double think_ms = netsim::to_ms(params.reuse.think_time);
  const double ttl_s =
      params.cache != nullptr ? params.cache->config().ttl_s : 0.0;

  const int n = std::max(1, params.reuse.queries_per_session);
  for (int i = 0; i < n; ++i) {
    // Same per-iteration tiling as the DoH side (trace_inspect contract).
    const ScopedSpan warm_query_span = net.span("warm_query");
    if (i > 0 && think_ms > 0.0) {
      co_await net.process(netsim::from_ms(net.rng.exponential(think_ms)));
    }
    WarmQueryObservation q;
    q.query_index = i;

    resolver::SharedCacheLookup look;
    if (params.cache != nullptr) {
      look = params.cache->sample(net.rng, params.population);
    }
    const dns::DomainName name = params.origin.with_subdomain(
        "popular-" + std::to_string(look.rank));

    if (params.cache != nullptr &&
        stub_cache.lookup(net.sim.now(), name, dns::RecordType::kA)) {
      q.stub_hit = true;
      q.ms = 0.0;
      if (net.metrics != nullptr) ++net.metrics->counters.stub_cache_hits;
      obs.queries.push_back(q);
      continue;
    }

    const SimTime start = net.sim.now();
    FlowAttributionScope attr_scope(
        net.attribution, net.sim,
        i == 0 ? "do53_warm_first" : "do53_warm");
    if (params.cache != nullptr && look.hit) {
      // The hit round trip is cache-hit resolution time end to end.
      const ScopedPhase hit_attr = net.phase(Phase::kDnsCacheHit);
      // ISP-cache hit: one UDP round trip plus the frontend hit cost —
      // same pricing as the resolver's real hit path, same synthesized
      // (decayed) answer as the DoH side.
      if (net.metrics != nullptr) ++net.metrics->counters.dns_queries;
      const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
      const dns::Message query = dns::Message::make_query(id, name);
      const Site& site = params.resolver->site();
      co_await net.hop(params.vantage, site,
                       dns::wire_size(query) + transport::kUdpOverheadBytes);
      co_await net.process_at(site, params.resolver->cache_hit_cost());
      const dns::Message answer = cached_answer(
          query, name, remaining_ttl(ttl_s, look.age_s), look.rank);
      co_await net.hop(site, params.vantage,
                       dns::wire_size(answer) + transport::kUdpOverheadBytes);
      q.shared_hit = true;
      if (net.metrics != nullptr) ++net.metrics->counters.shared_cache_hits;
      stub_cache.insert(net.sim.now(), name, dns::RecordType::kA,
                        answer.answers);
    } else {
      const resolver::StubResult result = co_await resolver::stub_resolve(
          net, params.vantage, *params.resolver,
          resolver::make_probe_query(net.rng, params.origin));
      if (!result.ok()) {
        obs.queries.push_back(q);
        co_return obs;
      }
      if (params.cache != nullptr) {
        if (net.metrics != nullptr) {
          ++net.metrics->counters.shared_cache_misses;
        }
        const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
        stub_cache.insert(
            net.sim.now(), name, dns::RecordType::kA,
            cached_answer(dns::Message::make_query(id, name), name,
                          static_cast<std::uint32_t>(ttl_s), look.rank)
                .answers);
      }
    }
    q.ms = ms_between(start, net.sim.now());
    obs.queries.push_back(q);
  }

  obs.ok = true;
  co_return obs;
}

}  // namespace dohperf::measure
