#include "measure/string_table.h"

namespace dohperf::measure {

StringTable& StringTable::operator=(const StringTable& other) {
  if (this == &other) return *this;
  // The lookup map views the deque's storage; rebuild it against our own
  // copy of the strings rather than copying views into `other`.
  names_ = other.names_;
  ids_.clear();
  ids_.reserve(names_.size());
  for (StrId id = 0; id < static_cast<StrId>(names_.size()); ++id) {
    ids_.emplace(names_[id], id);
  }
  return *this;
}

StrId StringTable::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const auto id = static_cast<StrId>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

StrId StringTable::find(std::string_view s) const {
  const auto it = ids_.find(s);
  return it == ids_.end() ? kNoStrId : it->second;
}

std::string_view StringTable::name(StrId id) const {
  if (id >= names_.size()) return {};
  return names_[id];
}

bool StringTable::operator==(const StringTable& other) const {
  return names_ == other.names_;
}

}  // namespace dohperf::measure
