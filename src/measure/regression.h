// Regression analyses of Section 6: logistic modelling of who suffers a
// worse-than-median DoH slowdown (Table 4) and linear modelling of the
// raw Do53 -> DoH delta (Tables 5 and 6).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "measure/dataset.h"
#include "stats/linreg.h"
#include "stats/logreg.h"

namespace dohperf::measure {

/// Term names used by the logistic model (Table 4 rows).
inline constexpr const char* kTermSlowBandwidth = "bandwidth:slow";
inline constexpr const char* kTermUpperMiddle = "income:upper-middle";
inline constexpr const char* kTermLowerMiddle = "income:lower-middle";
inline constexpr const char* kTermLowIncome = "income:low";
inline constexpr const char* kTermFewAses = "ases:below-median";
inline constexpr const char* kTermGoogle = "resolver:Google";
inline constexpr const char* kTermNextDns = "resolver:NextDNS";
inline constexpr const char* kTermQuad9 = "resolver:Quad9";

/// Term names used by the linear models (Table 5/6 rows).
inline constexpr const char* kTermGdp = "gdp_per_capita";
inline constexpr const char* kTermBandwidth = "bandwidth_mbps";
inline constexpr const char* kTermNumAses = "num_ases";
inline constexpr const char* kTermNsDistance = "nameserver_distance";
inline constexpr const char* kTermResolverDistance = "resolver_distance";

/// One analysis row: a (client, provider) pair with covariates attached.
/// Only clients with per-client Do53 data participate (the paper excludes
/// the 11 Super Proxy countries from per-client comparisons).
struct RegressionRow {
  double multiplier_1 = 0.0;     ///< DoH1 / Do53.
  double multiplier_10 = 0.0;
  double multiplier_100 = 0.0;
  double multiplier_1000 = 0.0;
  double delta_1 = 0.0;          ///< DoH1 - Do53 (ms).
  double delta_10 = 0.0;
  double delta_100 = 0.0;
  bool slow_bandwidth = false;
  int income_group = 3;          ///< 0 low .. 3 high.
  bool few_ases = false;
  std::string provider;
  double gdp_per_capita = 0.0;
  double bandwidth_mbps = 0.0;
  int num_ases = 0;
  double ns_distance_miles = 0.0;
  double resolver_distance_miles = 0.0;
};

/// Extracts analysis rows from a dataset (joins country covariates).
[[nodiscard]] std::vector<RegressionRow> regression_rows(
    const Dataset& dataset);

/// Global median multipliers for N = 1/10/100/1000 (the paper reports
/// 1.84x / 1.24x / 1.18x / 1.17x).
struct MultiplierMedians {
  double m1 = 0.0;
  double m10 = 0.0;
  double m100 = 0.0;
  double m1000 = 0.0;
};
[[nodiscard]] MultiplierMedians multiplier_medians(
    std::span<const RegressionRow> rows);

/// Table 4: logistic regression of "worse than the global median
/// multiplier" on the categorical covariates, for a given N. Returns the
/// fitted model; odds ratios of interest are read off by term name.
[[nodiscard]] stats::LogisticFit fit_slowdown_logistic(
    std::span<const RegressionRow> rows, int n_requests);

/// Table 5: linear regression of delta_N on the continuous covariates.
[[nodiscard]] stats::LinearFit fit_delta_linear(
    std::span<const RegressionRow> rows, int n_requests);

/// Table 6: per-resolver linear regression of delta_1.
[[nodiscard]] stats::LinearFit fit_delta_linear_for_provider(
    std::span<const RegressionRow> rows, std::string_view provider);

}  // namespace dohperf::measure
