// Dataset persistence.
//
// The paper released its measurement dataset alongside publication; this
// module gives the reproduction the same property. A dataset serialises
// to three CSV files in a directory (clients.csv, doh.csv, do53.csv) and
// loads back bit-exactly (doubles are round-tripped via %.17g).
#pragma once

#include <string>

#include "measure/dataset.h"

namespace dohperf::measure {

/// Writes `dataset` into `directory` (created if missing). Throws
/// std::runtime_error on I/O failure.
void save_dataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset previously written by save_dataset. Throws
/// std::runtime_error on missing files or malformed rows.
[[nodiscard]] Dataset load_dataset(const std::string& directory);

}  // namespace dohperf::measure
