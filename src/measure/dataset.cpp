#include "measure/dataset.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "stats/summary.h"

namespace dohperf::measure {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void Dataset::add_client(ClientInfo info) {
  clients_[info.exit_id] = std::move(info);
}

void Dataset::add_doh(DohRecord rec) { doh_.push_back(std::move(rec)); }

void Dataset::add_do53(Do53Record rec) { do53_.push_back(std::move(rec)); }

std::size_t Dataset::unique_clients(std::string_view provider) const {
  std::unordered_set<std::uint64_t> ids;
  for (const auto& r : doh_) {
    if (r.provider == provider) ids.insert(r.exit_id);
  }
  return ids.size();
}

std::size_t Dataset::unique_countries(std::string_view provider) const {
  std::set<std::string> countries;
  for (const auto& r : doh_) {
    if (r.provider == provider) countries.insert(r.iso2);
  }
  return countries.size();
}

std::size_t Dataset::do53_clients() const {
  std::unordered_set<std::uint64_t> ids;
  for (const auto& r : do53_) {
    if (r.exit_id != kAtlasExitId) ids.insert(r.exit_id);
  }
  return ids.size();
}

std::size_t Dataset::do53_countries() const {
  std::set<std::string> countries;
  for (const auto& r : do53_) countries.insert(r.iso2);
  return countries.size();
}

std::vector<std::string> Dataset::analysis_countries(int min_clients) const {
  // country -> provider -> unique client ids.
  std::map<std::string, std::map<std::string, std::unordered_set<uint64_t>>>
      seen;
  std::set<std::string> providers;
  for (const auto& r : doh_) {
    seen[r.iso2][r.provider].insert(r.exit_id);
    providers.insert(r.provider);
  }
  std::vector<std::string> out;
  for (const auto& [iso2, per_provider] : seen) {
    const bool ok = std::all_of(
        providers.begin(), providers.end(), [&](const std::string& p) {
          const auto it = per_provider.find(p);
          return it != per_provider.end() &&
                 it->second.size() >= static_cast<std::size_t>(min_clients);
        });
    if (ok) out.push_back(iso2);
  }
  return out;
}

std::map<std::string, std::size_t> Dataset::clients_per_country() const {
  std::map<std::string, std::unordered_set<std::uint64_t>> sets;
  for (const auto& [id, info] : clients_) sets[info.iso2].insert(id);
  std::map<std::string, std::size_t> out;
  for (const auto& [iso2, ids] : sets) out[iso2] = ids.size();
  return out;
}

std::vector<double> Dataset::tdoh_values(std::string_view provider) const {
  std::vector<double> out;
  for (const auto& r : doh_) {
    if (provider.empty() || r.provider == provider) {
      out.push_back(r.tdoh_ms);
    }
  }
  return out;
}

std::vector<double> Dataset::tdohr_values(std::string_view provider) const {
  std::vector<double> out;
  for (const auto& r : doh_) {
    if (provider.empty() || r.provider == provider) {
      out.push_back(r.tdohr_ms);
    }
  }
  return out;
}

std::vector<double> Dataset::do53_values(std::string_view iso2) const {
  std::vector<double> out;
  for (const auto& r : do53_) {
    if (iso2.empty() || r.iso2 == iso2) out.push_back(r.do53_ms);
  }
  return out;
}

std::vector<ClientProviderStat> Dataset::client_provider_stats() const {
  // Per-client Do53 medians (Atlas rows have no client attribution).
  std::unordered_map<std::uint64_t, std::vector<double>> do53_by_client;
  for (const auto& r : do53_) {
    if (r.exit_id != kAtlasExitId) do53_by_client[r.exit_id].push_back(r.do53_ms);
  }

  struct Acc {
    std::vector<double> tdoh, tdohr, pop_dist, pot_imp;
  };
  std::map<std::pair<std::uint64_t, std::string>, Acc> acc;
  for (const auto& r : doh_) {
    Acc& a = acc[{r.exit_id, r.provider}];
    a.tdoh.push_back(r.tdoh_ms);
    a.tdohr.push_back(r.tdohr_ms);
    a.pop_dist.push_back(r.pop_distance_miles);
    a.pot_imp.push_back(r.potential_improvement_miles);
  }

  std::vector<ClientProviderStat> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    const auto& [exit_id, provider] = key;
    const auto client_it = clients_.find(exit_id);
    if (client_it == clients_.end()) continue;

    ClientProviderStat s;
    s.exit_id = exit_id;
    s.provider = provider;
    s.iso2 = client_it->second.iso2;
    s.nameserver_distance_miles =
        client_it->second.nameserver_distance_miles;
    s.tdoh_ms = stats::median(a.tdoh);
    s.tdohr_ms = stats::median(a.tdohr);
    s.pop_distance_miles = stats::median(a.pop_dist);
    s.potential_improvement_miles = stats::median(a.pot_imp);

    const auto d_it = do53_by_client.find(exit_id);
    s.do53_ms = d_it == do53_by_client.end() ? kNaN
                                             : stats::median(d_it->second);
    out.push_back(std::move(s));
  }
  return out;
}

std::map<std::string, double> Dataset::country_do53_medians() const {
  std::map<std::string, std::vector<double>> values;
  for (const auto& r : do53_) values[r.iso2].push_back(r.do53_ms);
  std::map<std::string, double> out;
  for (const auto& [iso2, v] : values) out[iso2] = stats::median(v);
  return out;
}

std::map<std::string, double> Dataset::country_doh_medians(
    std::string_view provider, int n) const {
  std::map<std::string, std::vector<double>> values;
  for (const auto& r : doh_) {
    if (provider.empty() || r.provider == provider) {
      values[r.iso2].push_back(r.doh_n(n));
    }
  }
  std::map<std::string, double> out;
  for (const auto& [iso2, v] : values) out[iso2] = stats::median(v);
  return out;
}

}  // namespace dohperf::measure
