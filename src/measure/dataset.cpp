#include "measure/dataset.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "stats/summary.h"

namespace dohperf::measure {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void Dataset::add_client(ClientInfo info) {
  clients_[info.exit_id] = std::move(info);
}

void Dataset::add_doh(DohRecord rec) {
  doh_.push_back(rec);
  ++epoch_;
}

void Dataset::add_do53(Do53Record rec) {
  do53_.push_back(rec);
  ++epoch_;
}

void Dataset::ensure_index() const {
  if (index_epoch_ == epoch_) return;

  doh_index_.clear();
  std::map<StrId, std::unordered_set<std::uint64_t>> per_provider;
  std::map<std::pair<StrId, StrId>, std::unordered_set<std::uint64_t>>
      per_provider_country;
  for (const auto& r : doh_) {
    per_provider[r.provider].insert(r.exit_id);
    per_provider_country[{r.provider, r.iso2}].insert(r.exit_id);
  }
  for (const auto& [provider, ids] : per_provider) {
    doh_index_[provider].unique_clients = ids.size();
  }
  for (const auto& [key, ids] : per_provider_country) {
    doh_index_[key.first].clients_per_country[key.second] = ids.size();
  }

  std::unordered_set<std::uint64_t> do53_ids;
  std::unordered_set<StrId> do53_countries;
  for (const auto& r : do53_) {
    if (r.exit_id != kAtlasExitId) do53_ids.insert(r.exit_id);
    do53_countries.insert(r.iso2);
  }
  do53_clients_ = do53_ids.size();
  do53_countries_ = do53_countries.size();

  index_epoch_ = epoch_;
}

std::size_t Dataset::unique_clients(std::string_view provider) const {
  const StrId id = names_.find(provider);
  if (id == kNoStrId) return 0;
  ensure_index();
  const auto it = doh_index_.find(id);
  return it == doh_index_.end() ? 0 : it->second.unique_clients;
}

std::size_t Dataset::unique_countries(std::string_view provider) const {
  const StrId id = names_.find(provider);
  if (id == kNoStrId) return 0;
  ensure_index();
  const auto it = doh_index_.find(id);
  return it == doh_index_.end() ? 0 : it->second.clients_per_country.size();
}

std::size_t Dataset::do53_clients() const {
  ensure_index();
  return do53_clients_;
}

std::size_t Dataset::do53_countries() const {
  ensure_index();
  return do53_countries_;
}

std::vector<std::string> Dataset::analysis_countries(int min_clients) const {
  ensure_index();
  std::set<StrId> countries;
  for (const auto& [provider, index] : doh_index_) {
    for (const auto& [iso2, n] : index.clients_per_country) {
      countries.insert(iso2);
    }
  }
  std::vector<std::string> out;
  for (const StrId iso2 : countries) {
    const bool ok = std::all_of(
        doh_index_.begin(), doh_index_.end(), [&](const auto& entry) {
          const auto& per_country = entry.second.clients_per_country;
          const auto it = per_country.find(iso2);
          return it != per_country.end() &&
                 it->second >= static_cast<std::size_t>(min_clients);
        });
    if (ok) out.emplace_back(names_.name(iso2));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::string, std::size_t> Dataset::clients_per_country() const {
  std::map<std::string, std::unordered_set<std::uint64_t>> sets;
  for (const auto& [id, info] : clients_) sets[info.iso2].insert(id);
  std::map<std::string, std::size_t> out;
  for (const auto& [iso2, ids] : sets) out[iso2] = ids.size();
  return out;
}

std::vector<double> Dataset::tdoh_values(std::string_view provider) const {
  const StrId id = provider.empty() ? kNoStrId : names_.find(provider);
  if (!provider.empty() && id == kNoStrId) return {};
  std::vector<double> out;
  for (const auto& r : doh_) {
    if (provider.empty() || r.provider == id) out.push_back(r.tdoh_ms);
  }
  return out;
}

std::vector<double> Dataset::tdohr_values(std::string_view provider) const {
  const StrId id = provider.empty() ? kNoStrId : names_.find(provider);
  if (!provider.empty() && id == kNoStrId) return {};
  std::vector<double> out;
  for (const auto& r : doh_) {
    if (provider.empty() || r.provider == id) out.push_back(r.tdohr_ms);
  }
  return out;
}

std::vector<double> Dataset::do53_values(std::string_view iso2) const {
  const StrId id = iso2.empty() ? kNoStrId : names_.find(iso2);
  if (!iso2.empty() && id == kNoStrId) return {};
  std::vector<double> out;
  for (const auto& r : do53_) {
    if (iso2.empty() || r.iso2 == id) out.push_back(r.do53_ms);
  }
  return out;
}

std::vector<ClientProviderStat> Dataset::client_provider_stats() const {
  // Per-client Do53 medians (Atlas rows have no client attribution).
  std::unordered_map<std::uint64_t, std::vector<double>> do53_by_client;
  for (const auto& r : do53_) {
    if (r.exit_id != kAtlasExitId) do53_by_client[r.exit_id].push_back(r.do53_ms);
  }

  struct Acc {
    std::vector<double> tdoh, tdohr, pop_dist, pot_imp;
  };
  std::map<std::pair<std::uint64_t, StrId>, Acc> acc;
  for (const auto& r : doh_) {
    Acc& a = acc[{r.exit_id, r.provider}];
    a.tdoh.push_back(r.tdoh_ms);
    a.tdohr.push_back(r.tdohr_ms);
    a.pop_dist.push_back(r.pop_distance_miles);
    a.pot_imp.push_back(r.potential_improvement_miles);
  }

  std::vector<ClientProviderStat> out;
  out.reserve(acc.size());
  for (auto& [key, a] : acc) {
    const auto& [exit_id, provider] = key;
    const auto client_it = clients_.find(exit_id);
    if (client_it == clients_.end()) continue;

    ClientProviderStat s;
    s.exit_id = exit_id;
    s.provider = std::string(names_.name(provider));
    s.iso2 = client_it->second.iso2;
    s.nameserver_distance_miles =
        client_it->second.nameserver_distance_miles;
    s.tdoh_ms = stats::median_inplace(a.tdoh);
    s.tdohr_ms = stats::median_inplace(a.tdohr);
    s.pop_distance_miles = stats::median_inplace(a.pop_dist);
    s.potential_improvement_miles = stats::median_inplace(a.pot_imp);

    const auto d_it = do53_by_client.find(exit_id);
    s.do53_ms = d_it == do53_by_client.end()
                    ? kNaN
                    : stats::median_inplace(d_it->second);
    out.push_back(std::move(s));
  }
  // Present in the historical (exit_id, provider-name) order the old
  // string-keyed map produced, not in interner-id order.
  std::stable_sort(out.begin(), out.end(),
                   [](const ClientProviderStat& a,
                      const ClientProviderStat& b) {
                     if (a.exit_id != b.exit_id) return a.exit_id < b.exit_id;
                     return a.provider < b.provider;
                   });
  return out;
}

std::map<std::string, double> Dataset::country_do53_medians() const {
  std::map<StrId, std::vector<double>> values;
  for (const auto& r : do53_) values[r.iso2].push_back(r.do53_ms);
  std::map<std::string, double> out;
  for (auto& [iso2, v] : values) {
    out[std::string(names_.name(iso2))] = stats::median_inplace(v);
  }
  return out;
}

std::map<std::string, double> Dataset::country_doh_medians(
    std::string_view provider, int n) const {
  const StrId id = provider.empty() ? kNoStrId : names_.find(provider);
  if (!provider.empty() && id == kNoStrId) return {};
  std::map<StrId, std::vector<double>> values;
  for (const auto& r : doh_) {
    if (provider.empty() || r.provider == id) {
      values[r.iso2].push_back(r.doh_n(n));
    }
  }
  std::map<std::string, double> out;
  for (auto& [iso2, v] : values) {
    out[std::string(names_.name(iso2))] = stats::median_inplace(v);
  }
  return out;
}

}  // namespace dohperf::measure
