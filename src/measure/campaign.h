// The full measurement campaign (paper Sections 3 and 5.1).
//
// For every reachable exit node: cross-check BrightData's country label
// against the Maxmind-like geolocation service (discarding mismatches),
// then run `runs_per_client` sessions of 5 measurements each — one DoH
// resolution per studied provider plus one Do53 resolution via the
// client's default resolver. Do53 in the 11 Super Proxy countries is
// collected from the RIPE Atlas-like network instead (Section 3.5).
#pragma once

#include "measure/dataset.h"
#include "world/world_model.h"

namespace dohperf::measure {

/// Campaign knobs.
struct CampaignConfig {
  int runs_per_client = 2;
  /// Per-(client, provider) probability that a DoH measurement fails
  /// (unreachable resolver, dropped tunnel, ...). This is why Table 3's
  /// per-provider client counts fall slightly below the Do53 total.
  double provider_failure_rate = 0.006;
  /// Atlas Do53 sample size per Super Proxy country (paper: >= 250 in
  /// the validation experiments).
  int atlas_measurements_per_country = 250;
  /// Measurement flows launched concurrently per simulator batch.
  std::size_t batch_size = 256;
};

/// Runs the campaign over an assembled world.
class Campaign {
 public:
  explicit Campaign(world::WorldModel& world, CampaignConfig config = {});

  /// Executes every session and returns the collected dataset.
  [[nodiscard]] Dataset run();

 private:
  world::WorldModel& world_;
  CampaignConfig config_;
};

}  // namespace dohperf::measure
