// The full measurement campaign (paper Sections 3 and 5.1).
//
// For every reachable exit node: cross-check BrightData's country label
// against the Maxmind-like geolocation service (discarding mismatches),
// then run `runs_per_client` sessions of 5 measurements each — one DoH
// resolution per studied provider plus one Do53 resolution via the
// client's default resolver. Do53 in the 11 Super Proxy countries is
// collected from the RIPE Atlas-like network instead (Section 3.5).
//
// Execution is sharded: the retained exit nodes (and the Atlas countries)
// are partitioned across worker threads, each with its own simulator,
// event queue, replicated server stack (world::SimContext), and slab
// arena for coroutine frames (netsim::Arena). Every session draws its
// randomness from a private substream keyed by a stable identifier
// ("shard-exit-<id>-run-<n>" / "shard-atlas-<iso2>-<i>"), never by shard
// index or scheduling order, and the per-shard results are merged in
// canonical order — so the output is bit-identical for every thread
// count, including the serial reference path.
//
// Two sink modes share the execution engine:
//   * run() / run_serial()            -> retained-rows Dataset (paper-
//     scale analyses; every record resident).
//   * run_streaming() / *_serial()    -> StreamSink (million-session
//     scale; rows folded into sketches/bitsets/counters as sessions
//     complete, O(world) memory instead of O(sessions)).
#pragma once

#include <cstdint>
#include <vector>

#include "measure/dataset.h"
#include "measure/stream_sink.h"
#include "measure/warm.h"
#include "netsim/arena.h"
#include "netsim/faultplan.h"
#include "obs/attribution.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/slo.h"
#include "world/world_model.h"

namespace dohperf::measure {

/// Campaign knobs.
struct CampaignConfig {
  int runs_per_client = 2;
  /// Per-(client, provider) probability that a DoH measurement fails
  /// (unreachable resolver, dropped tunnel, ...). This is why Table 3's
  /// per-provider client counts fall slightly below the Do53 total.
  double provider_failure_rate = 0.006;
  /// Atlas Do53 sample size per Super Proxy country (paper: >= 250 in
  /// the validation experiments).
  int atlas_measurements_per_country = 250;
  /// Measurement flows launched concurrently per simulator batch.
  std::size_t batch_size = 256;
  /// Worker shards executing the campaign concurrently. 0 = take
  /// DOHPERF_THREADS from the environment, falling back to the hardware
  /// concurrency. The dataset is bit-identical for every value.
  int threads = 0;
  /// Episodic fault injection (loss spikes, blackouts, brownouts,
  /// provider outages). Disabled by default; every probability is zero,
  /// in which case no fault plan is sampled and no session draws change,
  /// so datasets stay bit-identical to a fault-free build. Plans are
  /// sampled per session from the session's private RNG substream and
  /// windows are expressed relative to the session's own start, so the
  /// result is still bit-identical for every thread count.
  netsim::FaultPlanConfig faults;
  /// Width of the sim-time metric-series windows. Windows are indexed
  /// relative to each session's own start (the fault plans' time base),
  /// so the merged series is bit-identical for every thread count.
  netsim::Duration series_window = netsim::from_ms(250.0);
  /// Anomaly flight-recorder policy. Enabled by default: every flow's
  /// span tree is built and examined, and only anomalous trees are
  /// retained (see obs/flight_recorder.h for the predicate).
  obs::AnomalyPolicy anomalies;
  /// Streaming-sink tuning (run_streaming() only).
  StreamSinkConfig stream;
  /// Virtual campaign-time spacing between session slots. Each session's
  /// SLO window offset is slot * session_spacing plus its own sim time —
  /// a pure function of the slot, so the multi-day campaign axis exists
  /// without moving any shard's clock and without perturbing a single
  /// RNG draw (zero spacing, the default, collapses the axis). The
  /// recurring fault schedules in `faults` are windowed on this axis too.
  netsim::Duration session_spacing{};
  /// SLO objectives and burn-rate window geometry. Outcome recording is
  /// always on (it is integer bookkeeping); `slo.enabled` gates alert
  /// evaluation and report outputs.
  obs::SloConfig slo;
  /// Shared PoP cache model ([cache]). Disabled by default: no model is
  /// built, no warm block runs, no session draw changes — datasets stay
  /// bit-identical to builds without the feature.
  resolver::SharedCacheConfig cache;
  /// Connection-reuse / warm-path knobs ([reuse]). Enabling either this
  /// or `cache` appends one warm DoH session per surviving provider and
  /// one warm Do53 session to every measurement session; their latencies
  /// land in per-query-index histograms and the *_warm series, never in
  /// the cold dataset rows (fig4/fig5 are untouched by construction).
  ReuseConfig reuse;
};

/// Per-shard self-profiling of one run: how the wall-clock work and the
/// event-queue pressure spread across workers (shard load imbalance is
/// invisible in the merged totals).
struct ShardProfile {
  int shard = 0;
  std::uint64_t sessions = 0;  ///< Sessions this shard executed.
  std::uint64_t events = 0;    ///< Simulator events this shard processed.
  double wall_seconds = 0.0;
  std::size_t queue_high_water = 0;  ///< Deepest event queue observed.
  /// Coroutine-frame arena counters for this shard (high-water, slab
  /// bytes, free-list reuse); see netsim/arena.h.
  netsim::ArenaStats arena;

  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
};

/// Execution counters of the last Campaign run (used by the benches to
/// track the sharding speedup).
struct CampaignStats {
  int shards = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;
  /// One entry per shard (the serial reference path reports one).
  std::vector<ShardProfile> shard_profiles;
};

/// Runs the campaign over an assembled world.
class Campaign {
 public:
  explicit Campaign(world::WorldModel& world, CampaignConfig config = {});

  /// Executes every session, sharded across worker threads (see
  /// CampaignConfig::threads), and returns the merged dataset.
  [[nodiscard]] Dataset run();

  /// Reference path: every session on the world's own simulator and
  /// server stack, no replicas, no threads. run() at any thread count is
  /// bit-identical to this.
  [[nodiscard]] Dataset run_serial();

  /// Streaming-sink mode: rows are folded into the per-shard sinks as
  /// sessions complete and never accumulate. Memory stays O(world);
  /// aggregate results are bit-identical for every thread count.
  [[nodiscard]] StreamSink run_streaming();

  /// Serial reference path for the streaming sink.
  [[nodiscard]] StreamSink run_streaming_serial();

  /// Counters of the most recent run.
  [[nodiscard]] const CampaignStats& stats() const { return stats_; }

  /// Observability metrics of the most recent run: wire/query/handshake
  /// counters plus per-provider resolution-latency histograms. Shards
  /// record into private registries that are merged in canonical shard
  /// order; integer-only arithmetic makes the result bit-identical for
  /// every thread count (see DESIGN.md "Observability").
  [[nodiscard]] const obs::Metrics& metrics() const { return metrics_; }

  /// Sim-time metric series of the most recent run: per-window counters
  /// and latency histograms under provider x country labels, recorded by
  /// each shard into a private series and merged in canonical shard
  /// order. Same bit-identity contract as metrics().
  [[nodiscard]] const obs::MetricSeries& series() const { return series_; }

  /// Anomaly flight recorder of the most recent run: merged, finalized,
  /// holding the canonical-latest retained anomalies and the examination
  /// counts. Same bit-identity contract as metrics().
  [[nodiscard]] const obs::FlightRecorder& anomalies() const {
    return recorder_;
  }

  /// SLO outcome tracker of the most recent run: per-(provider, country)
  /// outcome counts in campaign-time windows, classified once at each
  /// flow's exit path. Same bit-identity contract as metrics().
  [[nodiscard]] const obs::SloTracker& slo() const { return slo_; }

  /// Phase-exact latency attribution ledger of the most recent run:
  /// per-(provider, country, transport) integer microsecond sums and
  /// sketches whose phases partition each flow's end-to-end latency
  /// exactly. Same bit-identity contract as metrics().
  [[nodiscard]] const obs::AttributionLedger& attribution() const {
    return attribution_;
  }

  /// DOHPERF_THREADS from the environment, falling back to
  /// std::thread::hardware_concurrency() (minimum 1).
  [[nodiscard]] static int threads_from_env();

 private:
  /// `shards` == 0 selects the serial reference path.
  Dataset run_impl(int shards);
  StreamSink run_streaming_impl(int shards);

  world::WorldModel& world_;
  CampaignConfig config_;
  CampaignStats stats_;
  obs::Metrics metrics_;
  obs::MetricSeries series_;
  obs::FlightRecorder recorder_;
  obs::SloTracker slo_;
  obs::AttributionLedger attribution_;
};

}  // namespace dohperf::measure
