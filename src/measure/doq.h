// DNS-over-QUIC (RFC 9250) measurement flows plus session-resumption
// variants for DoH — extensions beyond the paper (its background section
// lists DoQ among the encrypted-DNS protocols; resumption is how deployed
// DoH clients amortise reconnects).
#pragma once

#include <cmath>
#include <limits>
#include <string>

#include "dns/name.h"
#include "netsim/netctx.h"
#include "resolver/doh_server.h"
#include "transport/quic.h"

namespace dohperf::measure {

/// Output of a direct DoQ measurement.
struct DirectDoqObservation {
  bool ok = false;
  double dns_ms = 0.0;      ///< Bootstrap of the DoQ hostname.
  double connect_ms = 0.0;  ///< Combined QUIC transport+TLS handshake
                            ///< (zero when resumed with 0-RTT).
  double query_ms = 0.0;
  /// NaN until the reuse query completes (see DirectDohObservation).
  double reuse_ms = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] double tdoq_ms() const {
    return dns_ms + connect_ms + query_ms;
  }
  [[nodiscard]] double tdoqr_ms() const { return reuse_ms; }
  [[nodiscard]] bool has_reuse() const { return !std::isnan(reuse_ms); }
};

/// Runs a DoQ resolution (one reuse query included) against the PoP
/// behind `doh`. With `resumed` the client holds a ticket from a prior
/// session: no bootstrap (the address is cached too) and 0-RTT.
[[nodiscard]] netsim::Task<DirectDoqObservation> doq_direct(
    netsim::NetCtx& net, netsim::Site vantage,
    resolver::RecursiveResolver* default_resolver,
    resolver::DohServer& doh, std::string hostname,
    dns::DomainName origin, bool resumed = false);

}  // namespace dohperf::measure
