#include "measure/doq.h"

#include "dns/wire.h"
#include "resolver/stub.h"

namespace dohperf::measure {

netsim::Task<DirectDoqObservation> doq_direct(
    netsim::NetCtx& net, netsim::Site vantage,
    resolver::RecursiveResolver* default_resolver,
    resolver::DohServer& doh, std::string hostname,
    dns::DomainName origin, bool resumed) {
  const auto flow_span = net.span("doq_query");
  obs::FlowAttributionScope attr_scope(net.attribution, net.sim, "doq");
  DirectDoqObservation obs;
  const netsim::Site pop = doh.site();

  if (!resumed) {
    // Bootstrap the server name via the default resolver (cache hit).
    // Connection bootstrap: attributed to the QUIC handshake it gates.
    const dohperf::obs::ScopedDnsRedirect boot_attr(
        net.attribution, dohperf::obs::Phase::kQuicHandshake);
    const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
    const resolver::StubResult bootstrap = co_await resolver::stub_resolve(
        net, vantage, *default_resolver,
        dns::Message::make_query(id, dns::DomainName::parse(hostname)));
    if (!bootstrap.ok()) co_return obs;
    obs.dns_ms = bootstrap.elapsed_ms;
  }

  const transport::QuicConnection conn =
      resumed ? co_await transport::quic_resume(net, vantage, pop)
              : co_await transport::quic_connect(net, vantage, pop);
  if (!conn.established) co_return obs;
  obs.connect_ms = netsim::to_ms(conn.handshake_time);

  // Each query rides its own QUIC stream; the backend recursion matches
  // DoH's exactly. The connection's short-header overhead prices every
  // record.
  auto one_query = [&](double& out_ms) -> netsim::Task<void> {
    const dns::Message query = resolver::make_probe_query(net.rng, origin);
    const netsim::SimTime start = net.sim.now();
    co_await conn.send(dns::wire_size(query));
    const dns::Message answer = co_await doh.resolver().resolve(net, query);
    co_await conn.recv(dns::wire_size(answer));
    obs.ok = answer.header.rcode == dns::Rcode::kNoError;
    out_ms = netsim::ms_between(start, net.sim.now());
  };

  co_await one_query(obs.query_ms);
  if (!obs.ok) co_return obs;
  co_await one_query(obs.reuse_ms);
  co_return obs;
}

}  // namespace dohperf::measure
