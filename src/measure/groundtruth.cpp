#include "measure/groundtruth.h"

#include <stdexcept>
#include <vector>

#include "measure/flows.h"
#include "resolver/stub.h"
#include "stats/summary.h"

namespace dohperf::measure {

GroundTruthLab::GroundTruthLab(world::WorldModel& world) : world_(world) {}

proxy::ExitNode GroundTruthLab::make_ec2_node(const std::string& iso2) {
  const geo::Country* country = geo::find_country(iso2);
  if (country == nullptr) {
    throw std::invalid_argument("unknown country " + iso2);
  }
  const auto resolvers = world_.isp_resolvers(iso2);
  if (resolvers.empty()) {
    throw std::invalid_argument("country " + iso2 + " not in this world");
  }

  // EC2 machines sit in datacenters: clean access, well-peered transit
  // (no ISP-resolver pathologies), low jitter — the reason the paper's
  // ground-truth deltas are single-digit milliseconds.
  netsim::Rng rng = world_.rng().split("ec2-" + iso2);
  const world::CountryNetProfile profile =
      world::profile_for(*country, world_.config().couple_infra);
  proxy::ExitNode node;
  node.advertised_iso2 = iso2;
  node.true_iso2 = iso2;
  node.site.position = geo::destination(country->centroid,
                                        rng.uniform(0.0, 360.0),
                                        rng.uniform(0.0, 60.0));
  node.site.lastmile_ms = 0.8;
  node.site.route_inflation = profile.route_inflation * 0.9;
  node.site.jitter_sigma = 0.03;
  node.site.loss_rate = 0.0005;
  node.prefix = 0xEC200000 + static_cast<geo::NetPrefix>(iso2[0] * 256 +
                                                         iso2[1]);
  node.default_resolver = resolvers.front();
  return node;
}

DohValidation GroundTruthLab::validate_doh(const std::string& iso2,
                                           std::size_t provider_index,
                                           int reps) {
  const proxy::ExitNode node = make_ec2_node(iso2);
  anycast::Provider& provider = world_.providers()[provider_index];

  // Datacenter vantage points ride clean BGP paths: anycast delivers
  // them to the nearest PoP, and the assignment is stable across the
  // repetitions of both methods.
  const std::size_t pop_index = provider.nearest(node.site.position);
  resolver::DohServer& doh = world_.doh_server(provider_index, pop_index);

  std::vector<double> est_tdoh, est_tdohr, truth_tdoh, truth_tdohr;

  for (int i = 0; i < reps; ++i) {
    // Estimator path: full proxied measurement.
    {
      netsim::NetCtx net = world_.ctx();
      DohProxyParams params;
      params.client = world_.measurement_client();
      params.super_proxy =
          world_.brightdata().nearest_super_proxy(node.site.position).site;
      params.exit = &node;
      params.doh = &doh;
      params.doh_hostname = provider.config().doh_hostname;
      params.tls = world_.config().tls_version;
      params.origin = world_.origin();
      auto task = doh_via_proxy(net, std::move(params));
      world_.sim().run();
      const DohProxyObservation obs = task.result();
      if (obs.ok) {
        est_tdoh.push_back(estimate_tdoh_ms(obs.inputs));
        est_tdohr.push_back(estimate_tdohr_ms(obs.inputs));
      }
    }
    // Ground truth: direct measurement at the controlled node.
    {
      netsim::NetCtx net = world_.ctx();
      auto task = doh_direct(net, node.site, node.default_resolver, doh,
                             provider.config().doh_hostname,
                             world_.config().tls_version, world_.origin());
      world_.sim().run();
      const DirectDohObservation obs = task.result();
      if (obs.ok) {
        truth_tdoh.push_back(obs.tdoh_ms());
        truth_tdohr.push_back(obs.tdohr_ms());
      }
    }
  }

  DohValidation v;
  v.iso2 = iso2;
  v.estimated_tdoh_ms = stats::median(est_tdoh);
  v.truth_tdoh_ms = stats::median(truth_tdoh);
  v.estimated_tdohr_ms = stats::median(est_tdohr);
  v.truth_tdohr_ms = stats::median(truth_tdohr);
  return v;
}

Do53Validation GroundTruthLab::validate_do53(const std::string& iso2,
                                             int reps) {
  if (proxy::resolves_dns_at_super_proxy(iso2)) {
    throw std::invalid_argument(
        "Do53 validation not applicable in Super Proxy country " + iso2);
  }
  const proxy::ExitNode node = make_ec2_node(iso2);

  std::vector<double> estimated, truth;
  for (int i = 0; i < reps; ++i) {
    {
      netsim::NetCtx net = world_.ctx();
      Do53ProxyParams params;
      params.client = world_.measurement_client();
      params.super_proxy =
          world_.brightdata().nearest_super_proxy(node.site.position).site;
      params.exit = &node;
      params.web_server = world_.authority().site();
      params.origin = world_.origin();
      params.resolve_at_super_proxy = false;
      params.authority = &world_.authority();
      auto task = do53_via_proxy(net, std::move(params));
      world_.sim().run();
      const Do53ProxyObservation obs = task.result();
      if (obs.ok) estimated.push_back(obs.tun.dns_ms);
    }
    {
      netsim::NetCtx net = world_.ctx();
      // Names must be fresh per repetition or the resolver cache would
      // serve every repetition after the first.
      auto task = do53_direct(
          net, node.site, node.default_resolver,
          world_.origin().with_subdomain(resolver::uuid_label(net.rng)));
      world_.sim().run();
      const double ms = task.result();
      if (ms >= 0) truth.push_back(ms);
    }
  }

  Do53Validation v;
  v.iso2 = iso2;
  v.estimated_ms = stats::median(estimated);
  v.truth_ms = stats::median(truth);
  return v;
}

NetworkComparison GroundTruthLab::compare_networks(const std::string& iso2,
                                                   int reps) {
  netsim::Rng rng = world_.rng().split("netcmp-" + iso2);
  std::vector<double> brightdata, atlas;

  for (int i = 0; i < reps; ++i) {
    // BrightData: a random real exit node in the country.
    const proxy::ExitNode* exit = world_.brightdata().pick_exit(iso2, rng);
    if (exit != nullptr &&
        !proxy::resolves_dns_at_super_proxy(iso2)) {
      netsim::NetCtx net = world_.ctx();
      Do53ProxyParams params;
      params.client = world_.measurement_client();
      params.super_proxy =
          world_.brightdata().nearest_super_proxy(exit->site.position).site;
      params.exit = exit;
      params.web_server = world_.authority().site();
      params.origin = world_.origin();
      params.resolve_at_super_proxy = false;
      params.authority = &world_.authority();
      auto task = do53_via_proxy(net, std::move(params));
      world_.sim().run();
      const Do53ProxyObservation obs = task.result();
      if (obs.ok) brightdata.push_back(obs.tun.dns_ms);
    }
    // Atlas: a random probe in the country.
    const proxy::AtlasProbe* probe = world_.atlas().pick_probe(iso2, rng);
    if (probe != nullptr) {
      netsim::NetCtx net = world_.ctx();
      auto task = world_.atlas().measure_do53(
          net, *probe,
          world_.origin().with_subdomain(resolver::uuid_label(rng)));
      world_.sim().run();
      const double ms = task.result();
      if (ms >= 0) atlas.push_back(ms);
    }
  }

  NetworkComparison cmp;
  cmp.iso2 = iso2;
  cmp.brightdata_median_ms = stats::median(brightdata);
  cmp.atlas_median_ms = stats::median(atlas);
  return cmp;
}

}  // namespace dohperf::measure
