// Streaming campaign sink: fold rows into aggregates as sessions finish.
//
// The retained-rows Dataset keeps every DohRecord/Do53Record resident —
// O(sessions) memory — which is fine at paper scale (~22k clients) and
// exactly wrong at a million sessions. A StreamSink instead absorbs each
// session's rows the moment its coroutine completes and keeps only:
//
//   * mergeable quantile sketches (global, per-provider, per-country —
//     the fig4/fig5 CDF and median paths), ~6 KB each;
//   * per-provider client bitsets over the canonical exit enumeration
//     (unique-client / unique-country / analysis-country queries);
//   * counters (sessions, rows, failures);
//   * optionally, dense per-(client, provider) run values for exact
//     client medians — O(clients x providers x runs) memory, intended
//     for paper-scale parity checks, off by default and off in the
//     million-session sweep.
//
// Every aggregate has an order-canonical merge (integer bucket adds,
// bitset ORs, disjoint array fills), so per-shard sinks merged in shard
// order are bit-identical to the serial fold for any shard count — the
// same determinism contract the retained Dataset carries.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "measure/dataset.h"
#include "measure/string_table.h"
#include "stats/quantile_sketch.h"

namespace dohperf::measure {

struct StreamSinkConfig {
  /// Keep dense per-(client, provider) run values so exact client-median
  /// stats (Tables 4-6) can be produced from the stream. Costs
  /// O(clients x providers x run_capacity) doubles — enable at paper
  /// scale, leave off for million-session sweeps.
  bool client_stats = false;
  /// Values retained per (client, provider) metric; runs beyond this are
  /// folded into the sketches but not the exact client medians.
  int run_capacity = 8;
};

class StreamSink {
 public:
  StreamSink() = default;

  /// The canonical exit enumeration (ids, country ids, NS distances in
  /// enumeration order), the provider catalog ids, and the pre-interned
  /// name table — all produced on the main thread before sharding.
  StreamSink(StreamSinkConfig cfg, int runs_per_client,
             std::vector<std::uint64_t> exit_ids,
             std::vector<StrId> exit_iso2,
             std::vector<double> exit_ns_distance,
             std::vector<StrId> provider_ids, StringTable names);

  /// Folds one completed session's rows. Called by the owning shard in
  /// canonical slot order.
  void fold(std::span<const DohRecord> doh,
            std::span<const Do53Record> do53, std::uint64_t failed);

  /// Absorbs another shard's sink (same world / config). Bucket adds and
  /// bitset ORs only — order-canonical.
  void merge(const StreamSink& other);

  /// Campaign bookkeeping (mirrors Dataset's fields).
  std::uint64_t discarded_mismatch = 0;

  // ---- Counters -------------------------------------------------------
  [[nodiscard]] std::uint64_t sessions() const { return sessions_; }
  [[nodiscard]] std::uint64_t failed_measurements() const { return failed_; }
  [[nodiscard]] std::uint64_t doh_rows() const { return doh_rows_; }
  [[nodiscard]] std::uint64_t do53_rows() const { return do53_rows_; }
  [[nodiscard]] std::uint64_t atlas_rows() const { return atlas_rows_; }
  [[nodiscard]] std::size_t client_count() const { return exit_ids_.size(); }

  // ---- Sketch queries (fig4 CDFs, medians) ----------------------------
  /// Empty provider selects the all-providers sketch; unknown providers
  /// yield an empty sketch.
  [[nodiscard]] const stats::QuantileSketch& tdoh_sketch(
      std::string_view provider = {}) const;
  [[nodiscard]] const stats::QuantileSketch& tdohr_sketch(
      std::string_view provider = {}) const;
  /// Empty iso2 selects all Do53 rows (Atlas included).
  [[nodiscard]] const stats::QuantileSketch& do53_sketch(
      std::string_view iso2 = {}) const;

  // ---- Unique-count queries (Table 3, analysis filter) ----------------
  [[nodiscard]] std::size_t unique_clients(std::string_view provider) const;
  [[nodiscard]] std::size_t unique_countries(
      std::string_view provider) const;
  [[nodiscard]] std::size_t do53_clients() const;
  [[nodiscard]] std::size_t do53_countries() const;
  [[nodiscard]] std::vector<std::string> analysis_countries(
      int min_clients = 10) const;

  // ---- Median maps (fig5) ---------------------------------------------
  /// Sketch-median DoH1 per country for one provider (empty = all).
  [[nodiscard]] std::map<std::string, double> country_doh1_medians(
      std::string_view provider) const;
  [[nodiscard]] std::map<std::string, double> country_do53_medians() const;

  /// Exact per-(client, provider) medians; empty unless
  /// StreamSinkConfig::client_stats was set.
  [[nodiscard]] std::vector<ClientProviderStat> client_provider_stats()
      const;

  [[nodiscard]] const StringTable& names() const { return names_; }

  /// Bit-identity comparison for the determinism tests: every aggregate,
  /// counter, and table must match.
  bool operator==(const StreamSink& other) const;

 private:
  [[nodiscard]] std::uint32_t provider_index(StrId id) const;
  [[nodiscard]] const stats::QuantileSketch* provider_sketch(
      const std::vector<stats::QuantileSketch>& sketches,
      const stats::QuantileSketch& all, std::string_view provider) const;

  StreamSinkConfig cfg_;
  int runs_per_client_ = 0;
  int run_cap_ = 0;

  StringTable names_;
  std::vector<StrId> provider_ids_;
  std::vector<std::uint64_t> exit_ids_;
  std::vector<StrId> exit_iso2_;
  std::vector<double> exit_ns_distance_;
  std::unordered_map<std::uint64_t, std::uint32_t> exit_index_;  // derived

  std::uint64_t sessions_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t doh_rows_ = 0;
  std::uint64_t do53_rows_ = 0;
  std::uint64_t atlas_rows_ = 0;

  stats::QuantileSketch tdoh_all_, tdohr_all_, do53_all_;
  std::vector<stats::QuantileSketch> tdoh_by_provider_;
  std::vector<stats::QuantileSketch> tdohr_by_provider_;
  std::map<std::pair<StrId, std::uint32_t>, stats::QuantileSketch>
      country_doh1_;
  std::map<StrId, stats::QuantileSketch> country_do53_;

  /// One bit per canonical exit index, per provider.
  std::vector<std::vector<std::uint8_t>> doh_client_bits_;
  std::vector<std::uint8_t> do53_client_bits_;

  /// Dense client-stat stores (allocated only when cfg_.client_stats):
  /// value index = (exit * P + provider) * run_cap_ + k.
  std::vector<double> cs_tdoh_, cs_tdohr_, cs_pop_dist_, cs_pot_imp_;
  std::vector<std::uint8_t> cs_doh_count_;  ///< per (exit, provider)
  std::vector<double> cs_do53_;             ///< exit * run_cap_ + k
  std::vector<std::uint8_t> cs_do53_count_;  ///< per exit
};

}  // namespace dohperf::measure
