// Ground-truth validation experiments (paper Section 4).
//
// The paper enrolled its own EC2 machines as exit nodes to compare the
// header-based estimators against direct measurements taken at the node.
// We do the same: plant a controlled vantage in a country, measure DoH /
// Do53 through the proxy path (estimator) and directly (truth), and
// compare medians.
#pragma once

#include <string>

#include "measure/dataset.h"
#include "world/world_model.h"

namespace dohperf::measure {

/// Table 1 row: estimated vs ground-truth DoH and DoHR medians (ms).
struct DohValidation {
  std::string iso2;
  double estimated_tdoh_ms = 0.0;
  double truth_tdoh_ms = 0.0;
  double estimated_tdohr_ms = 0.0;
  double truth_tdohr_ms = 0.0;

  [[nodiscard]] double tdoh_error_ms() const {
    return estimated_tdoh_ms - truth_tdoh_ms;
  }
  [[nodiscard]] double tdohr_error_ms() const {
    return estimated_tdohr_ms - truth_tdohr_ms;
  }
};

/// Table 2 row: estimated vs ground-truth Do53 medians (ms).
struct Do53Validation {
  std::string iso2;
  double estimated_ms = 0.0;
  double truth_ms = 0.0;

  [[nodiscard]] double error_ms() const { return estimated_ms - truth_ms; }
};

/// Section 4.4: BrightData-vs-Atlas Do53 consistency in one country.
struct NetworkComparison {
  std::string iso2;
  double brightdata_median_ms = 0.0;
  double atlas_median_ms = 0.0;

  [[nodiscard]] double difference_ms() const {
    return brightdata_median_ms - atlas_median_ms;
  }
};

/// Runs the validation experiments against a world.
class GroundTruthLab {
 public:
  explicit GroundTruthLab(world::WorldModel& world);

  /// Validates the Equation-7/8 estimators from a controlled EC2-like
  /// node in `iso2` against `provider_index` (default: Cloudflare), with
  /// `reps` repetitions per method (paper: 10).
  [[nodiscard]] DohValidation validate_doh(const std::string& iso2,
                                           std::size_t provider_index = 0,
                                           int reps = 10);

  /// Validates the Do53 header readout (not applicable in Super Proxy
  /// countries; throws std::invalid_argument for them, as in the paper).
  [[nodiscard]] Do53Validation validate_do53(const std::string& iso2,
                                             int reps = 10);

  /// Compares BrightData and Atlas Do53 medians in an overlap country.
  [[nodiscard]] NetworkComparison compare_networks(const std::string& iso2,
                                                   int reps = 250);

 private:
  /// Builds the controlled EC2-like exit node for a country.
  [[nodiscard]] proxy::ExitNode make_ec2_node(const std::string& iso2);

  world::WorldModel& world_;
};

}  // namespace dohperf::measure
