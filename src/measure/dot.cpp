#include "measure/dot.h"

#include "dns/wire.h"
#include "resolver/stub.h"
#include "transport/tcp.h"

namespace dohperf::measure {

netsim::Task<DirectDotObservation> dot_direct(
    netsim::NetCtx& net, netsim::Site vantage,
    resolver::RecursiveResolver* default_resolver,
    resolver::DohServer& doh, std::string hostname,
    transport::TlsVersion tls, dns::DomainName origin) {
  const auto flow_span = net.span("dot_query");
  obs::FlowAttributionScope attr_scope(net.attribution, net.sim, "dot");
  DirectDotObservation obs;
  const netsim::Site pop = doh.site();

  // Bootstrap the DoT hostname via the default resolver (cache hit).
  // Connection bootstrap: attributed to the TCP handshake it gates.
  {
    const dohperf::obs::ScopedDnsRedirect boot_attr(
        net.attribution, dohperf::obs::Phase::kTcpHandshake);
    const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
    const resolver::StubResult bootstrap = co_await resolver::stub_resolve(
        net, vantage, *default_resolver,
        dns::Message::make_query(id, dns::DomainName::parse(hostname)));
    if (!bootstrap.ok()) co_return obs;
    obs.dns_ms = bootstrap.elapsed_ms;
  }

  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, vantage, pop);
  if (!tcp.established) co_return obs;
  obs.connect_ms = netsim::to_ms(tcp.handshake_time);
  const transport::TlsSession session =
      co_await transport::tls_handshake(tcp, tls);
  if (!session.established) co_return obs;
  obs.tls_ms = netsim::to_ms(session.handshake_time);

  // Queries ride the TLS session with a two-octet length prefix; the
  // backend recursion is identical to DoH's.
  const transport::LengthPrefixedChannel channel(session);
  auto one_query = [&](double& out_ms) -> netsim::Task<void> {
    const dns::Message query = resolver::make_probe_query(net.rng, origin);
    const netsim::SimTime start = net.sim.now();
    co_await channel.send(dns::wire_size(query));
    const dns::Message answer =
        co_await doh.resolver().resolve(net, query);
    co_await channel.recv(dns::wire_size(answer));
    obs.ok = answer.header.rcode == dns::Rcode::kNoError;
    out_ms = netsim::ms_between(start, net.sim.now());
  };

  co_await one_query(obs.query_ms);
  if (!obs.ok) co_return obs;
  co_await one_query(obs.reuse_ms);
  co_return obs;
}

}  // namespace dohperf::measure
