#include "measure/flows.h"

#include <chrono>
#include <limits>
#include <utility>

#include "dns/wire.h"
#include "proxy/headers.h"
#include "proxy/tunnel.h"
#include "resolver/stub.h"
#include "transport/http.h"
#include "transport/tcp.h"

namespace dohperf::measure {
namespace {

using netsim::Duration;
using netsim::NetCtx;
using netsim::SimTime;
using netsim::Site;
using netsim::Task;
using netsim::from_ms;
using netsim::ms_between;
// The flows name their observation locals `obs`, which shadows the
// dohperf::obs namespace inside function scope; alias the guard types here.
using ScopedSpan = dohperf::obs::ScopedSpan;
using ScopedPhase = dohperf::obs::ScopedPhase;
using ScopedDnsRedirect = dohperf::obs::ScopedDnsRedirect;
using FlowAttributionScope = dohperf::obs::FlowAttributionScope;
using Phase = dohperf::obs::Phase;

/// Resolver-side key-schedule cost during the tunnelled TLS handshake.
constexpr double kResolverKeyScheduleMs = 0.3;

/// Study web server: static-page service time and response body size.
constexpr double kStaticPageMs = 0.4;
constexpr std::size_t kPageBodyBytes = 2048;

/// A stub resolution at `vantage` against `resolver`; returns elapsed ms
/// (negative on failure). Thin adapter over resolver::stub_resolve.
Task<double> resolve_at(NetCtx& net, Site vantage,
                        resolver::RecursiveResolver* resolver,
                        dns::Message query,
                        std::uint32_t client_address = 0) {
  const resolver::StubResult result = co_await resolver::stub_resolve(
      net, vantage, *resolver, std::move(query), client_address);
  co_return result.ok() ? result.elapsed_ms : -1.0;
}

/// Client-side header extraction; false on malformed headers.
bool extract_inputs(const transport::HttpResponse& resp,
                    EstimatorInputs& out) {
  const auto tun_text = resp.headers.get(proxy::kTunTimelineHeader);
  const auto bd_text = resp.headers.get(proxy::kTimelineHeader);
  if (!tun_text || !bd_text) return false;
  const auto tun = proxy::parse_tun_timeline(*tun_text);
  const auto bd = proxy::parse_timeline(*bd_text);
  if (!tun || !bd) return false;
  out.tun = *tun;
  out.brightdata_ms = bd->total_ms();
  return true;
}

}  // namespace

Task<DohProxyObservation> doh_via_proxy(NetCtx& net, DohProxyParams params) {
  DohProxyObservation obs;
  const Site& client = params.client;
  const Site& sp = params.super_proxy;
  const Site& exit = params.exit->site;
  const Site pop = params.doh->site();

  if (net.metrics != nullptr) ++net.metrics->counters.doh_queries;

  // The client's timestamps are taken relative to the session's own
  // start rather than the simulation epoch: only the differences
  // T_B-T_A and T_D-T_C enter Equations 6-8, and session-relative
  // values keep the double arithmetic independent of how far the
  // simulated clock has already advanced (required for the sharded
  // campaign's bit-identical-output guarantee).
  const SimTime session_epoch = net.sim.now();

  // Root span plus the three phases of the paper's decomposition
  // (Tables 1-2): tunnel establishment, TLS handshake, resolution. The
  // phases are opened back-to-back, so their durations sum exactly to
  // the root's — what tools/trace_inspect verifies on a capture.
  ScopedSpan flow_span = net.span("doh_query");
  FlowAttributionScope attr_scope(net.attribution, net.sim, "doh");

  proxy::Tunnel tunnel(net, client, sp, exit);

  // ---- Steps 1-8: establish the TCP tunnel (phase "tunnel") ---------
  ScopedSpan tunnel_phase = net.span("tunnel");
  const SimTime tunnel_start = net.sim.now();
  obs.inputs.stamps.t_a = ms_between(session_epoch, net.sim.now());

  transport::HttpRequest connect_req;
  connect_req.method = "CONNECT";
  connect_req.target = params.doh_hostname + ":443";
  connect_req.headers.add("host", connect_req.target);
  co_await tunnel.connect_to_super_proxy(connect_req);  // t1
  co_await tunnel.forward_connect(connect_req);         // t2

  // t3+t4: the exit node resolves the DoH hostname with its default
  // resolver (a cache hit for these ultra-hot names).
  const auto bootstrap_id =
      static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
  double dns_ms = 0.0;
  {
    const ScopedSpan bootstrap_span = net.span("bootstrap_dns");
    // t3+t4 are part of tunnel establishment: the lookup exists only to
    // learn where to CONNECT, so it counts as tunnel time.
    const ScopedDnsRedirect boot_attr(net.attribution,
                                      Phase::kTunnelConnect);
    dns_ms = co_await resolve_at(
        net, exit, params.exit->default_resolver,
        dns::Message::make_query(
            bootstrap_id, dns::DomainName::parse(params.doh_hostname)));
  }
  if (dns_ms < 0) co_return obs;
  obs.true_dns_ms = dns_ms;

  // t5+t6: TCP handshake exit <-> PoP.
  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, exit, pop);
  if (!tcp.established) co_return obs;
  obs.true_connect_ms = netsim::to_ms(tcp.handshake_time);

  // t7-t8: tunnel-established reply with the timing headers.
  proxy::TunTimeline tun;
  tun.dns_ms = dns_ms;
  tun.connect_ms = obs.true_connect_ms;
  const std::string ok_wire = co_await tunnel.send_established_reply(tun);

  obs.inputs.stamps.t_b = ms_between(session_epoch, net.sim.now());
  tunnel_phase.finish();
  // Per-phase sim-time series (paper Tables 1-2 decomposition over the
  // session timeline); no-ops unless a series recorder is attached.
  net.series.latency("phase_tunnel_ms", net.sim.now(),
                     ms_between(tunnel_start, net.sim.now()));
  const auto parsed = transport::parse_response(ok_wire);
  if (!parsed || !extract_inputs(*parsed, obs.inputs)) co_return obs;

  // ---- Steps 9-14: TLS handshake through the tunnel (phase
  // "handshake") -----------------------------------------------------
  ScopedSpan handshake_phase = net.span("handshake");
  // The tunnelled handshake is inline (no transport::tls_handshake call),
  // so it opens its own attribution frame here.
  ScopedPhase handshake_attr = net.phase(Phase::kTlsHandshake);
  const SimTime handshake_start = net.sim.now();
  // The tunnelled handshake is modelled inline (no transport::
  // tls_handshake call), so count it here.
  if (net.metrics != nullptr) ++net.metrics->counters.tls_handshakes;
  obs.inputs.stamps.t_c = ms_between(session_epoch, net.sim.now());

  // The tunnelled ClientHello's loss recovery rides the exit<->PoP leg
  // (the client's own legs were already gated at tunnel establishment).
  {
    const netsim::RetryOutcome hello = co_await net.handshake_gate(
        exit, pop, transport::kHelloRetryPolicy);
    if (!hello.delivered) co_return obs;
  }

  co_await tunnel.send_framed(transport::kClientHelloBytes);  // t9, t10
  SimTime leg_start = net.sim.now();
  co_await tcp.send_framed(transport::kClientHelloBytes);  // t11
  co_await net.process(from_ms(kResolverKeyScheduleMs));
  co_await tcp.recv_framed(transport::kServerHelloBytes);  // t12
  obs.true_tls_ms = ms_between(leg_start, net.sim.now());
  co_await tunnel.recv_framed(transport::kServerHelloBytes);  // t13, t14

  // Record layers of the single end-to-end TLS session, one per segment
  // it crosses: client<->PoP through the tunnel, exit<->PoP on the leg.
  const transport::TlsSession tls_tunnel(tunnel, params.tls);
  const transport::TlsSession tls_leg(tcp, params.tls);

  if (params.tls == transport::TlsVersion::kTls12) {
    // Legacy second round trip: client Finished -> server Finished.
    co_await tunnel.send_framed(transport::kClientFinishedBytes);
    co_await tcp.send_framed(transport::kClientFinishedBytes);
    co_await tls_leg.recv(transport::kServerFinishedBytes);
    co_await tls_tunnel.recv(transport::kServerFinishedBytes);
  }
  handshake_attr.finish();
  handshake_phase.finish();
  net.series.latency("phase_handshake_ms", net.sim.now(),
                     ms_between(handshake_start, net.sim.now()));

  // ---- Steps 15-22: the DoH query (phase "resolution") --------------
  ScopedSpan resolution_phase = net.span("resolution");
  const SimTime resolution_start = net.sim.now();
  const dns::Message query =
      resolver::make_probe_query(net.rng, params.origin);
  transport::HttpRequest get_req;
  get_req.method = "GET";
  get_req.target = resolver::doh_get_target(query);
  get_req.headers.add("host", params.doh_hostname);
  get_req.headers.add("accept", "application/dns-message");
  // Client Finished piggybacks on the first record (TLS 1.3).
  const std::size_t get_payload =
      get_req.wire_size() + transport::kClientFinishedBytes;

  co_await tls_tunnel.send(get_payload);  // t15, t16
  leg_start = net.sim.now();
  co_await tls_leg.send(get_payload);  // t17
  const transport::HttpResponse doh_resp = co_await params.doh->handle(
      net, get_req, params.exit->prefix);  // t18, t19 inside
  co_await tls_leg.recv(doh_resp);  // t20
  obs.true_query_ms = ms_between(leg_start, net.sim.now());
  co_await tls_tunnel.recv(doh_resp);  // t21, t22

  obs.inputs.stamps.t_d = ms_between(session_epoch, net.sim.now());
  resolution_phase.finish();
  net.series.latency("phase_resolution_ms", net.sim.now(),
                     ms_between(resolution_start, net.sim.now()));
  flow_span.finish();
  obs.http_status = doh_resp.status;
  obs.ok = doh_resp.status == 200;
  co_return obs;
}

Task<DirectDohObservation> doh_direct(NetCtx& net, Site vantage,
                                      resolver::RecursiveResolver*
                                          default_resolver,
                                      resolver::DohServer& doh,
                                      std::string doh_hostname,
                                      transport::TlsVersion tls,
                                      dns::DomainName origin) {
  DirectDohObservation obs;
  const Site pop = doh.site();

  if (net.metrics != nullptr) ++net.metrics->counters.doh_queries;
  ScopedSpan flow_span = net.span("doh_direct");
  FlowAttributionScope attr_scope(net.attribution, net.sim, "doh_direct");

  // Bootstrap (t3+t4). Connection bootstrap, so the lookup's time lands
  // in the TCP handshake phase it gates.
  const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
  {
    const ScopedSpan bootstrap_span = net.span("bootstrap_dns");
    const ScopedDnsRedirect boot_attr(net.attribution,
                                      Phase::kTcpHandshake);
    obs.dns_ms = co_await resolve_at(
        net, vantage, default_resolver,
        dns::Message::make_query(id, dns::DomainName::parse(doh_hostname)));
  }
  if (obs.dns_ms < 0) co_return obs;

  // TCP + TLS.
  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, vantage, pop);
  if (!tcp.established) co_return obs;
  obs.connect_ms = netsim::to_ms(tcp.handshake_time);
  const transport::TlsSession session =
      co_await transport::tls_handshake(tcp, tls);
  if (!session.established) co_return obs;
  obs.tls_ms = netsim::to_ms(session.handshake_time);

  // First query.
  auto one_query = [&](double& out_ms) -> Task<void> {
    const ScopedSpan query_span = net.span("doh_exchange");
    const dns::Message query = resolver::make_probe_query(net.rng, origin);
    transport::HttpRequest req;
    req.method = "GET";
    req.target = resolver::doh_get_target(query);
    req.headers.add("host", doh_hostname);

    const SimTime start = net.sim.now();
    co_await session.send(req);
    const transport::HttpResponse resp = co_await doh.handle(net, req);
    co_await session.recv(resp);
    out_ms = ms_between(start, net.sim.now());
    obs.http_status = resp.status;
    obs.ok = resp.status == 200;
  };

  co_await one_query(obs.query_ms);
  if (!obs.ok) co_return obs;
  // Connection reuse: a second query on the same TLS session.
  co_await one_query(obs.reuse_ms);
  co_return obs;
}

Task<Do53ProxyObservation> do53_via_proxy(NetCtx& net,
                                          Do53ProxyParams params) {
  Do53ProxyObservation obs;
  const Site& client = params.client;
  const Site& sp = params.super_proxy;
  const Site& exit = params.exit->site;

  const dns::Message query =
      resolver::make_probe_query(net.rng, params.origin);
  const dns::DomainName target_name = query.questions.front().name;

  if (net.metrics != nullptr) ++net.metrics->counters.do53_queries;
  ScopedSpan flow_span = net.span("do53_query");
  FlowAttributionScope attr_scope(net.attribution, net.sim, "do53");

  proxy::Tunnel tunnel(net, client, sp, exit);

  // Steps 1-2: CONNECT through the Super Proxy.
  transport::HttpRequest connect_req;
  connect_req.method = "CONNECT";
  connect_req.target = target_name.to_string() + ":80";
  co_await tunnel.connect_to_super_proxy(connect_req);

  double dns_ms = 0.0;
  if (params.resolve_at_super_proxy) {
    // BrightData quirk in the 11 Super Proxy countries: the Super Proxy
    // resolves the name itself (datacenter-grade path to the
    // authoritative server), so the header value does NOT reflect the
    // exit node (paper Section 3.5).
    obs.resolved_at_super_proxy = true;
    const ScopedSpan sp_resolve_span = net.span("super_proxy_resolve");
    // The Super Proxy goes straight to the authoritative server for the
    // fresh probe name — a cache miss by construction.
    const ScopedPhase resolve_attr = net.phase(Phase::kDnsCacheMiss);
    netsim::Path authority_path(net, sp, params.authority->site());
    authority_path.set_framing(transport::kUdpOverheadBytes,
                               transport::kUdpOverheadBytes);
    const SimTime start = net.sim.now();
    co_await authority_path.send(dns::wire_size(query));
    {
      const ScopedPhase proc_attr = net.phase(Phase::kServerProcessing);
      co_await net.process(params.authority->processing_delay());
    }
    const dns::Message auth_resp = params.authority->handle(query, 0xFFFF);
    co_await authority_path.recv(dns::wire_size(auth_resp));
    dns_ms = ms_between(start, net.sim.now());
    obs.true_do53_ms = std::numeric_limits<double>::quiet_NaN();
    co_await tunnel.forward_connect(connect_req);
  } else {
    co_await tunnel.forward_connect(connect_req);
    // The exit node resolves the fresh name with its default resolver —
    // a guaranteed cache miss recursing to the authoritative server.
    dns_ms = co_await resolve_at(net, exit, params.exit->default_resolver,
                                 query, params.exit->prefix);
    if (dns_ms < 0) co_return obs;
    obs.true_do53_ms = dns_ms;
  }

  // TCP handshake exit <-> web server, then the tunnel reply (t7-t8).
  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, exit, params.web_server);
  if (!tcp.established) co_return obs;

  proxy::TunTimeline tun;
  tun.dns_ms = dns_ms;
  tun.connect_ms = netsim::to_ms(tcp.handshake_time);
  const std::string ok_wire = co_await tunnel.send_established_reply(tun);

  const auto parsed = transport::parse_response(ok_wire);
  if (!parsed) co_return obs;
  const auto tun_text = parsed->headers.get(proxy::kTunTimelineHeader);
  const auto bd_text = parsed->headers.get(proxy::kTimelineHeader);
  if (!tun_text || !bd_text) co_return obs;
  const auto tun_parsed = proxy::parse_tun_timeline(*tun_text);
  const auto bd_parsed = proxy::parse_timeline(*bd_text);
  if (!tun_parsed || !bd_parsed) co_return obs;
  obs.tun = *tun_parsed;
  obs.brightdata_ms = bd_parsed->total_ms();

  // Complete the page fetch for realism (GET + 200), not timed.
  const ScopedSpan fetch_span = net.span("page_fetch");
  transport::HttpRequest get_req;
  get_req.method = "GET";
  get_req.target = "/";
  get_req.headers.add("host", target_name.to_string());
  co_await tunnel.send_framed(get_req.wire_size());
  co_await tcp.send_framed(get_req.wire_size());
  co_await net.process(from_ms(kStaticPageMs));
  co_await tcp.recv_framed(kPageBodyBytes);
  co_await tunnel.recv_framed(kPageBodyBytes);

  obs.ok = true;
  co_return obs;
}

Task<double> do53_direct(NetCtx& net, Site vantage,
                         resolver::RecursiveResolver* resolver,
                         dns::DomainName name) {
  if (net.metrics != nullptr) ++net.metrics->counters.do53_queries;
  const ScopedSpan flow_span = net.span("do53_direct");
  FlowAttributionScope attr_scope(net.attribution, net.sim, "do53_direct");
  const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
  co_return co_await resolve_at(net, vantage, resolver,
                                dns::Message::make_query(id, std::move(name)));
}

}  // namespace dohperf::measure
