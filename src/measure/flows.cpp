#include "measure/flows.h"

#include <chrono>
#include <limits>
#include <utility>

#include "dns/wire.h"
#include "proxy/headers.h"
#include "resolver/stub.h"
#include "transport/http.h"
#include "transport/tcp.h"

namespace dohperf::measure {
namespace {

using netsim::Duration;
using netsim::NetCtx;
using netsim::SimTime;
using netsim::Site;
using netsim::Task;
using netsim::from_ms;
using netsim::ms_between;


/// One message crossing the established tunnel client -> exit.
Task<void> tunnel_forward(NetCtx& net, const Site& client, const Site& sp,
                          const Site& exit, std::size_t bytes) {
  co_await net.hop(client, sp, bytes);
  co_await net.process(from_ms(kSuperProxyForwardMs));
  co_await net.hop(sp, exit, bytes);
  co_await net.process(from_ms(proxy::kExitForwardingMs));
}

/// One message crossing the tunnel exit -> client.
Task<void> tunnel_backward(NetCtx& net, const Site& client, const Site& sp,
                           const Site& exit, std::size_t bytes) {
  co_await net.process(from_ms(proxy::kExitForwardingMs));
  co_await net.hop(exit, sp, bytes);
  co_await net.process(from_ms(kSuperProxyForwardMs));
  co_await net.hop(sp, client, bytes);
}

/// A stub resolution at `vantage` against `resolver`; returns elapsed ms
/// (negative on failure). Thin adapter over resolver::stub_resolve.
Task<double> resolve_at(NetCtx& net, Site vantage,
                        resolver::RecursiveResolver* resolver,
                        dns::Message query,
                        std::uint32_t client_address = 0) {
  const resolver::StubResult result = co_await resolver::stub_resolve(
      net, vantage, *resolver, std::move(query), client_address);
  co_return result.ok() ? result.elapsed_ms : -1.0;
}

/// The Super Proxy's "200 OK" carrying the timing headers of step 8.
transport::HttpResponse make_tunnel_response(
    const proxy::TunTimeline& tun,
    const proxy::BrightDataNetwork::OverheadSample& overheads) {
  transport::HttpResponse resp;
  resp.status = 200;
  resp.reason = "OK";
  resp.headers.add(std::string(proxy::kTunTimelineHeader),
                   proxy::format_tun_timeline(tun));
  proxy::BrightDataTimeline bd;
  bd.auth_ms = overheads.auth_ms;
  bd.init_ms = overheads.init_ms;
  bd.select_ms = overheads.select_ms;
  bd.vld_ms = overheads.vld_ms;
  resp.headers.add(std::string(proxy::kTimelineHeader),
                   proxy::format_timeline(bd));
  return resp;
}

/// Client-side header extraction; false on malformed headers.
bool extract_inputs(const transport::HttpResponse& resp,
                    EstimatorInputs& out) {
  const auto tun_text = resp.headers.get(proxy::kTunTimelineHeader);
  const auto bd_text = resp.headers.get(proxy::kTimelineHeader);
  if (!tun_text || !bd_text) return false;
  const auto tun = proxy::parse_tun_timeline(*tun_text);
  const auto bd = proxy::parse_timeline(*bd_text);
  if (!tun || !bd) return false;
  out.tun = *tun;
  out.brightdata_ms = bd->total_ms();
  return true;
}

}  // namespace

Task<DohProxyObservation> doh_via_proxy(NetCtx& net, DohProxyParams params) {
  DohProxyObservation obs;
  const Site& client = params.client;
  const Site& sp = params.super_proxy;
  const Site& exit = params.exit->site;
  const Site pop = params.doh->site();

  // The client's timestamps are taken relative to the session's own
  // start rather than the simulation epoch: only the differences
  // T_B-T_A and T_D-T_C enter Equations 6-8, and session-relative
  // values keep the double arithmetic independent of how far the
  // simulated clock has already advanced (required for the sharded
  // campaign's bit-identical-output guarantee).
  const SimTime session_epoch = net.sim.now();

  // ---- Steps 1-8: establish the TCP tunnel -------------------------
  obs.inputs.stamps.t_a = ms_between(session_epoch, net.sim.now());

  transport::HttpRequest connect_req;
  connect_req.method = "CONNECT";
  connect_req.target = params.doh_hostname + ":443";
  connect_req.headers.add("host", connect_req.target);
  co_await net.hop(client, sp, connect_req.wire_size());  // t1

  const auto overheads =
      proxy::BrightDataNetwork::sample_overheads(net.rng);
  co_await net.process(from_ms(overheads.total_ms()));
  co_await net.hop(sp, exit, connect_req.wire_size());  // t2
  co_await net.process(from_ms(proxy::kExitForwardingMs));

  // t3+t4: the exit node resolves the DoH hostname with its default
  // resolver (a cache hit for these ultra-hot names).
  const auto bootstrap_id =
      static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
  const double dns_ms = co_await resolve_at(
      net, exit, params.exit->default_resolver,
      dns::Message::make_query(bootstrap_id,
                               dns::DomainName::parse(params.doh_hostname)));
  if (dns_ms < 0) co_return obs;
  obs.true_dns_ms = dns_ms;

  // t5+t6: TCP handshake exit <-> PoP.
  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, exit, pop);
  obs.true_connect_ms = netsim::to_ms(tcp.handshake_time);

  // t7-t8: tunnel-established reply with the timing headers.
  proxy::TunTimeline tun;
  tun.dns_ms = dns_ms;
  tun.connect_ms = obs.true_connect_ms;
  const transport::HttpResponse ok_resp =
      make_tunnel_response(tun, overheads);
  const std::string ok_wire = ok_resp.serialize();
  co_await net.process(from_ms(proxy::kExitForwardingMs));
  co_await net.hop(exit, sp, ok_wire.size());         // t7
  co_await net.process(from_ms(kSuperProxyForwardMs));
  co_await net.hop(sp, client, ok_wire.size());       // t8

  obs.inputs.stamps.t_b = ms_between(session_epoch, net.sim.now());
  const auto parsed = transport::parse_response(ok_wire);
  if (!parsed || !extract_inputs(*parsed, obs.inputs)) co_return obs;

  // ---- Steps 9-14: TLS handshake through the tunnel ------------------
  obs.inputs.stamps.t_c = ms_between(session_epoch, net.sim.now());

  co_await tunnel_forward(net, client, sp, exit,
                          transport::kClientHelloBytes);  // t9, t10
  SimTime leg_start = net.sim.now();
  co_await net.hop(exit, pop, transport::kClientHelloBytes);  // t11
  co_await net.process(from_ms(0.3));  // key schedule at the resolver
  co_await net.hop(pop, exit, transport::kServerHelloBytes);  // t12
  obs.true_tls_ms = ms_between(leg_start, net.sim.now());
  co_await tunnel_backward(net, client, sp, exit,
                           transport::kServerHelloBytes);  // t13, t14

  if (params.tls == transport::TlsVersion::kTls12) {
    // Legacy second round trip: client Finished -> server Finished.
    co_await tunnel_forward(net, client, sp, exit,
                            transport::kClientFinishedBytes);
    co_await net.hop(exit, pop, transport::kClientFinishedBytes);
    co_await net.hop(pop, exit, transport::kRecordOverheadBytes + 32);
    co_await tunnel_backward(net, client, sp, exit,
                             transport::kRecordOverheadBytes + 32);
  }

  // ---- Steps 15-22: the DoH query -----------------------------------
  const dns::Message query =
      resolver::make_probe_query(net.rng, params.origin);
  transport::HttpRequest get_req;
  get_req.method = "GET";
  get_req.target = resolver::doh_get_target(query);
  get_req.headers.add("host", params.doh_hostname);
  get_req.headers.add("accept", "application/dns-message");
  const std::size_t get_bytes =
      get_req.wire_size() + transport::kRecordOverheadBytes +
      transport::kClientFinishedBytes;  // Finished piggybacks (TLS 1.3)

  co_await tunnel_forward(net, client, sp, exit, get_bytes);  // t15, t16
  leg_start = net.sim.now();
  co_await net.hop(exit, pop, get_bytes);  // t17
  const transport::HttpResponse doh_resp = co_await params.doh->handle(
      net, get_req, params.exit->prefix);  // t18, t19 inside
  const std::size_t resp_bytes =
      doh_resp.wire_size() + transport::kRecordOverheadBytes;
  co_await net.hop(pop, exit, resp_bytes);  // t20
  obs.true_query_ms = ms_between(leg_start, net.sim.now());
  co_await tunnel_backward(net, client, sp, exit, resp_bytes);  // t21, t22

  obs.inputs.stamps.t_d = ms_between(session_epoch, net.sim.now());
  obs.http_status = doh_resp.status;
  obs.ok = doh_resp.status == 200;
  co_return obs;
}

Task<DirectDohObservation> doh_direct(NetCtx& net, Site vantage,
                                      resolver::RecursiveResolver*
                                          default_resolver,
                                      resolver::DohServer& doh,
                                      std::string doh_hostname,
                                      transport::TlsVersion tls,
                                      dns::DomainName origin) {
  DirectDohObservation obs;
  const Site pop = doh.site();

  // Bootstrap (t3+t4).
  const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
  obs.dns_ms = co_await resolve_at(
      net, vantage, default_resolver,
      dns::Message::make_query(id, dns::DomainName::parse(doh_hostname)));
  if (obs.dns_ms < 0) co_return obs;

  // TCP + TLS.
  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, vantage, pop);
  obs.connect_ms = netsim::to_ms(tcp.handshake_time);
  const transport::TlsSession session =
      co_await transport::tls_handshake(net, tcp, tls);
  obs.tls_ms = netsim::to_ms(session.handshake_time);

  // First query.
  auto one_query = [&](double& out_ms) -> Task<void> {
    const dns::Message query = resolver::make_probe_query(net.rng, origin);
    transport::HttpRequest req;
    req.method = "GET";
    req.target = resolver::doh_get_target(query);
    req.headers.add("host", doh_hostname);
    const std::size_t req_bytes =
        req.wire_size() + transport::kRecordOverheadBytes;

    const SimTime start = net.sim.now();
    co_await net.hop(vantage, pop, req_bytes);
    const transport::HttpResponse resp = co_await doh.handle(net, req);
    co_await net.hop(pop, vantage,
                     resp.wire_size() + transport::kRecordOverheadBytes);
    out_ms = ms_between(start, net.sim.now());
    obs.http_status = resp.status;
    obs.ok = resp.status == 200;
  };

  co_await one_query(obs.query_ms);
  if (!obs.ok) co_return obs;
  // Connection reuse: a second query on the same TLS session.
  co_await one_query(obs.reuse_ms);
  co_return obs;
}

Task<Do53ProxyObservation> do53_via_proxy(NetCtx& net,
                                          Do53ProxyParams params) {
  Do53ProxyObservation obs;
  const Site& client = params.client;
  const Site& sp = params.super_proxy;
  const Site& exit = params.exit->site;

  const dns::Message query =
      resolver::make_probe_query(net.rng, params.origin);
  const dns::DomainName target_name = query.questions.front().name;

  // Steps 1-2: CONNECT through the Super Proxy.
  transport::HttpRequest connect_req;
  connect_req.method = "CONNECT";
  connect_req.target = target_name.to_string() + ":80";
  co_await net.hop(client, sp, connect_req.wire_size());
  const auto overheads =
      proxy::BrightDataNetwork::sample_overheads(net.rng);
  co_await net.process(from_ms(overheads.total_ms()));

  double dns_ms = 0.0;
  if (params.resolve_at_super_proxy) {
    // BrightData quirk in the 11 Super Proxy countries: the Super Proxy
    // resolves the name itself (datacenter-grade path to the
    // authoritative server), so the header value does NOT reflect the
    // exit node (paper Section 3.5).
    obs.resolved_at_super_proxy = true;
    const SimTime start = net.sim.now();
    const std::size_t query_bytes = dns::wire_size(query) + 28;
    co_await net.hop(sp, params.authority->site(), query_bytes);
    co_await net.process(params.authority->processing_delay());
    const dns::Message auth_resp = params.authority->handle(query, 0xFFFF);
    co_await net.hop(params.authority->site(), sp,
                     dns::wire_size(auth_resp) + 28);
    dns_ms = ms_between(start, net.sim.now());
    obs.true_do53_ms = std::numeric_limits<double>::quiet_NaN();
    co_await net.hop(sp, exit, connect_req.wire_size());
    co_await net.process(from_ms(proxy::kExitForwardingMs));
  } else {
    co_await net.hop(sp, exit, connect_req.wire_size());
    co_await net.process(from_ms(proxy::kExitForwardingMs));
    // The exit node resolves the fresh name with its default resolver —
    // a guaranteed cache miss recursing to the authoritative server.
    dns_ms = co_await resolve_at(net, exit, params.exit->default_resolver,
                                 query, params.exit->prefix);
    if (dns_ms < 0) co_return obs;
    obs.true_do53_ms = dns_ms;
  }

  // TCP handshake exit <-> web server, then the tunnel reply (t7-t8).
  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, exit, params.web_server);

  proxy::TunTimeline tun;
  tun.dns_ms = dns_ms;
  tun.connect_ms = netsim::to_ms(tcp.handshake_time);
  const transport::HttpResponse ok_resp =
      make_tunnel_response(tun, overheads);
  const std::string ok_wire = ok_resp.serialize();
  co_await net.process(from_ms(proxy::kExitForwardingMs));
  co_await net.hop(exit, sp, ok_wire.size());
  co_await net.process(from_ms(kSuperProxyForwardMs));
  co_await net.hop(sp, client, ok_wire.size());

  const auto parsed = transport::parse_response(ok_wire);
  if (!parsed) co_return obs;
  const auto tun_text = parsed->headers.get(proxy::kTunTimelineHeader);
  const auto bd_text = parsed->headers.get(proxy::kTimelineHeader);
  if (!tun_text || !bd_text) co_return obs;
  const auto tun_parsed = proxy::parse_tun_timeline(*tun_text);
  const auto bd_parsed = proxy::parse_timeline(*bd_text);
  if (!tun_parsed || !bd_parsed) co_return obs;
  obs.tun = *tun_parsed;
  obs.brightdata_ms = bd_parsed->total_ms();

  // Complete the page fetch for realism (GET + 200), not timed.
  transport::HttpRequest get_req;
  get_req.method = "GET";
  get_req.target = "/";
  get_req.headers.add("host", target_name.to_string());
  co_await tunnel_forward(net, client, sp, exit, get_req.wire_size());
  co_await net.hop(exit, params.web_server, get_req.wire_size());
  co_await net.process(from_ms(0.4));  // static page
  co_await net.hop(params.web_server, exit, 2048);
  co_await tunnel_backward(net, client, sp, exit, 2048);

  obs.ok = true;
  co_return obs;
}

Task<double> do53_direct(NetCtx& net, Site vantage,
                         resolver::RecursiveResolver* resolver,
                         dns::DomainName name) {
  const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
  co_return co_await resolve_at(net, vantage, resolver,
                                dns::Message::make_query(id, std::move(name)));
}

}  // namespace dohperf::measure
