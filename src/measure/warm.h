// Warm-path measurement flows: the steady-state pricing the one-shot
// flows deliberately avoid.
//
// The paper's methodology is worst-case by construction — every query is
// a fresh <UUID>.a.com over a fresh connection, so DoH pays bootstrap +
// TCP + TLS + full recursion every single time. Böttger et al. (see
// PAPERS.md) showed that deployed clients amortise almost all of that:
// persistent connections make the nth query ride a warm session, session
// tickets turn reconnects into 1-RTT (TLS) or 0-RTT (QUIC) events, and
// the resolver's shared cache answers popular names without recursing.
// These flows measure that world: a client issues a burst of
// Zipf-popular queries through a ConnectionPool against a resolver
// fronted by the stateless SharedCacheModel, recording per-query
// latency *with its query index*, so cold (index 0) and warm (index
// >= 1) samples separate cleanly downstream.
#pragma once

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "client/connection_pool.h"
#include "dns/name.h"
#include "netsim/netctx.h"
#include "resolver/doh_server.h"
#include "resolver/recursive.h"
#include "resolver/shared_cache.h"
#include "transport/tls.h"

namespace dohperf::measure {

/// Connection-reuse knobs ([reuse] in a CampaignSpec).
struct ReuseConfig {
  bool enabled = false;
  /// Queries issued per warm-path session (index 0 is the cold one).
  int queries_per_session = 8;
  /// Mean of the exponential think-time between queries (zero = none):
  /// long enough gaps walk the connection past its idle timeout and
  /// exercise the resumption path instead of plain reuse.
  netsim::Duration think_time = netsim::from_ms(0.0);
  client::PoolConfig pool;
};

/// One query of a warm-path session.
struct WarmQueryObservation {
  int query_index = 0;   ///< 0-based index within the session.
  bool connection_reused = false;  ///< Rode a live pooled connection.
  bool session_resumed = false;    ///< Reconnected via session ticket.
  bool stub_hit = false;    ///< Answered from the client-local cache.
  bool shared_hit = false;  ///< Answered from the resolver's shared cache.
  /// End-to-end latency including any connection setup this query
  /// triggered (so index 0 prices the cold start). NaN if it failed.
  double ms = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] bool valid() const { return !std::isnan(ms); }
};

/// A whole warm-path session.
struct WarmPathObservation {
  bool ok = false;  ///< Every query completed.
  std::vector<WarmQueryObservation> queries;
  client::PoolStats pool;  ///< Final pool accounting for the session.
};

/// Parameters for a warm DoH session at a controlled vantage.
struct WarmDohParams {
  netsim::Site vantage;
  /// Bootstrap resolver for the DoH hostname (cold acquisitions only).
  resolver::RecursiveResolver* default_resolver = nullptr;
  resolver::DohServer* doh = nullptr;
  std::string doh_hostname;
  transport::TlsVersion tls = transport::TlsVersion::kTls13;
  dns::DomainName origin;  ///< Study zone; popular names live under it.
  /// Shared-cache model; nullptr prices every query as a full recursion.
  const resolver::SharedCacheModel* cache = nullptr;
  /// Background population warming this resolver's cache (centralized:
  /// the whole country is behind one provider PoP).
  double population = 0.0;
  ReuseConfig reuse;
};

/// Runs one warm DoH session: queries_per_session Zipf-popular queries
/// through a fresh ConnectionPool (query 0 is always cold).
[[nodiscard]] netsim::Task<WarmPathObservation> doh_warm_path(
    netsim::NetCtx& net, WarmDohParams params);

/// Parameters for the Do53 counterpart: no connections to warm (UDP),
/// but the same stub cache and a *distributed* shared cache — the caller
/// passes the per-ISP population share, not the whole country.
struct WarmDo53Params {
  netsim::Site vantage;
  resolver::RecursiveResolver* resolver = nullptr;
  dns::DomainName origin;
  const resolver::SharedCacheModel* cache = nullptr;
  double population = 0.0;  ///< Population behind *this* ISP resolver.
  ReuseConfig reuse;
};

[[nodiscard]] netsim::Task<WarmPathObservation> do53_warm_path(
    netsim::NetCtx& net, WarmDo53Params params);

}  // namespace dohperf::measure
