#include "measure/stream_sink.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <set>

#include "stats/summary.h"

namespace dohperf::measure {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void set_bit(std::vector<std::uint8_t>& bits, std::uint32_t i) {
  bits[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7u));
}

bool test_bit(const std::vector<std::uint8_t>& bits, std::uint32_t i) {
  return (bits[i >> 3] >> (i & 7u)) & 1u;
}

std::size_t popcount(const std::vector<std::uint8_t>& bits) {
  std::size_t n = 0;
  for (const std::uint8_t b : bits) n += std::popcount(b);
  return n;
}

const stats::QuantileSketch& empty_sketch() {
  static const stats::QuantileSketch sketch;
  return sketch;
}

}  // namespace

StreamSink::StreamSink(StreamSinkConfig cfg, int runs_per_client,
                       std::vector<std::uint64_t> exit_ids,
                       std::vector<StrId> exit_iso2,
                       std::vector<double> exit_ns_distance,
                       std::vector<StrId> provider_ids, StringTable names)
    : cfg_(cfg),
      runs_per_client_(runs_per_client),
      run_cap_(std::max(1, std::min(cfg.run_capacity,
                                    std::max(1, runs_per_client)))),
      names_(std::move(names)),
      provider_ids_(std::move(provider_ids)),
      exit_ids_(std::move(exit_ids)),
      exit_iso2_(std::move(exit_iso2)),
      exit_ns_distance_(std::move(exit_ns_distance)) {
  const std::size_t n_exits = exit_ids_.size();
  const std::size_t n_providers = provider_ids_.size();
  exit_index_.reserve(n_exits);
  for (std::uint32_t e = 0; e < n_exits; ++e) {
    exit_index_.emplace(exit_ids_[e], e);
  }
  tdoh_by_provider_.resize(n_providers);
  tdohr_by_provider_.resize(n_providers);
  doh_client_bits_.assign(n_providers,
                          std::vector<std::uint8_t>((n_exits + 7) / 8, 0));
  do53_client_bits_.assign((n_exits + 7) / 8, 0);
  if (cfg_.client_stats) {
    const std::size_t cells =
        n_exits * n_providers * static_cast<std::size_t>(run_cap_);
    cs_tdoh_.assign(cells, 0.0);
    cs_tdohr_.assign(cells, 0.0);
    cs_pop_dist_.assign(cells, 0.0);
    cs_pot_imp_.assign(cells, 0.0);
    cs_doh_count_.assign(n_exits * n_providers, 0);
    cs_do53_.assign(n_exits * static_cast<std::size_t>(run_cap_), 0.0);
    cs_do53_count_.assign(n_exits, 0);
  }
}

std::uint32_t StreamSink::provider_index(StrId id) const {
  for (std::uint32_t p = 0; p < provider_ids_.size(); ++p) {
    if (provider_ids_[p] == id) return p;
  }
  assert(false && "row references a provider outside the catalog");
  return 0;
}

void StreamSink::fold(std::span<const DohRecord> doh,
                      std::span<const Do53Record> do53,
                      std::uint64_t failed) {
  ++sessions_;
  failed_ += failed;

  for (const DohRecord& r : doh) {
    const std::uint32_t p = provider_index(r.provider);
    ++doh_rows_;
    tdoh_all_.record(r.tdoh_ms);
    tdohr_all_.record(r.tdohr_ms);
    tdoh_by_provider_[p].record(r.tdoh_ms);
    tdohr_by_provider_[p].record(r.tdohr_ms);
    country_doh1_[{r.iso2, p}].record(r.tdoh_ms);

    const std::uint32_t e = exit_index_.at(r.exit_id);
    set_bit(doh_client_bits_[p], e);
    if (cfg_.client_stats) {
      const std::size_t slot = static_cast<std::size_t>(e) *
                                   provider_ids_.size() +
                               p;
      std::uint8_t& count = cs_doh_count_[slot];
      if (count < run_cap_) {
        const std::size_t at =
            slot * static_cast<std::size_t>(run_cap_) + count;
        cs_tdoh_[at] = r.tdoh_ms;
        cs_tdohr_[at] = r.tdohr_ms;
        cs_pop_dist_[at] = r.pop_distance_miles;
        cs_pot_imp_[at] = r.potential_improvement_miles;
        ++count;
      }
    }
  }

  for (const Do53Record& r : do53) {
    do53_all_.record(r.do53_ms);
    country_do53_[r.iso2].record(r.do53_ms);
    if (r.exit_id == kAtlasExitId) {
      ++atlas_rows_;
      continue;
    }
    ++do53_rows_;
    const std::uint32_t e = exit_index_.at(r.exit_id);
    set_bit(do53_client_bits_, e);
    if (cfg_.client_stats) {
      std::uint8_t& count = cs_do53_count_[e];
      if (count < run_cap_) {
        cs_do53_[static_cast<std::size_t>(e) *
                     static_cast<std::size_t>(run_cap_) +
                 count] = r.do53_ms;
        ++count;
      }
    }
  }
}

void StreamSink::merge(const StreamSink& other) {
  assert(exit_ids_.size() == other.exit_ids_.size());
  assert(provider_ids_ == other.provider_ids_);

  sessions_ += other.sessions_;
  failed_ += other.failed_;
  doh_rows_ += other.doh_rows_;
  do53_rows_ += other.do53_rows_;
  atlas_rows_ += other.atlas_rows_;
  discarded_mismatch += other.discarded_mismatch;

  tdoh_all_.merge(other.tdoh_all_);
  tdohr_all_.merge(other.tdohr_all_);
  do53_all_.merge(other.do53_all_);
  for (std::size_t p = 0; p < tdoh_by_provider_.size(); ++p) {
    tdoh_by_provider_[p].merge(other.tdoh_by_provider_[p]);
    tdohr_by_provider_[p].merge(other.tdohr_by_provider_[p]);
  }
  for (const auto& [key, sketch] : other.country_doh1_) {
    country_doh1_[key].merge(sketch);
  }
  for (const auto& [key, sketch] : other.country_do53_) {
    country_do53_[key].merge(sketch);
  }

  for (std::size_t p = 0; p < doh_client_bits_.size(); ++p) {
    for (std::size_t i = 0; i < doh_client_bits_[p].size(); ++i) {
      doh_client_bits_[p][i] |= other.doh_client_bits_[p][i];
    }
  }
  for (std::size_t i = 0; i < do53_client_bits_.size(); ++i) {
    do53_client_bits_[i] |= other.do53_client_bits_[i];
  }

  if (cfg_.client_stats && other.cfg_.client_stats) {
    // Shards own disjoint exits, so per-(exit, provider) stores never
    // collide; append defensively anyway.
    for (std::size_t slot = 0; slot < cs_doh_count_.size(); ++slot) {
      for (std::uint8_t k = 0; k < other.cs_doh_count_[slot]; ++k) {
        if (cs_doh_count_[slot] >= run_cap_) break;
        const std::size_t to =
            slot * static_cast<std::size_t>(run_cap_) + cs_doh_count_[slot];
        const std::size_t from =
            slot * static_cast<std::size_t>(run_cap_) + k;
        cs_tdoh_[to] = other.cs_tdoh_[from];
        cs_tdohr_[to] = other.cs_tdohr_[from];
        cs_pop_dist_[to] = other.cs_pop_dist_[from];
        cs_pot_imp_[to] = other.cs_pot_imp_[from];
        ++cs_doh_count_[slot];
      }
    }
    for (std::size_t e = 0; e < cs_do53_count_.size(); ++e) {
      for (std::uint8_t k = 0; k < other.cs_do53_count_[e]; ++k) {
        if (cs_do53_count_[e] >= run_cap_) break;
        cs_do53_[e * static_cast<std::size_t>(run_cap_) +
                 cs_do53_count_[e]] =
            other.cs_do53_[e * static_cast<std::size_t>(run_cap_) + k];
        ++cs_do53_count_[e];
      }
    }
  }
}

const stats::QuantileSketch* StreamSink::provider_sketch(
    const std::vector<stats::QuantileSketch>& sketches,
    const stats::QuantileSketch& all, std::string_view provider) const {
  if (provider.empty()) return &all;
  const StrId id = names_.find(provider);
  if (id == kNoStrId) return nullptr;
  for (std::size_t p = 0; p < provider_ids_.size(); ++p) {
    if (provider_ids_[p] == id) return &sketches[p];
  }
  return nullptr;
}

const stats::QuantileSketch& StreamSink::tdoh_sketch(
    std::string_view provider) const {
  const auto* s = provider_sketch(tdoh_by_provider_, tdoh_all_, provider);
  return s != nullptr ? *s : empty_sketch();
}

const stats::QuantileSketch& StreamSink::tdohr_sketch(
    std::string_view provider) const {
  const auto* s = provider_sketch(tdohr_by_provider_, tdohr_all_, provider);
  return s != nullptr ? *s : empty_sketch();
}

const stats::QuantileSketch& StreamSink::do53_sketch(
    std::string_view iso2) const {
  if (iso2.empty()) return do53_all_;
  const StrId id = names_.find(iso2);
  if (id == kNoStrId) return empty_sketch();
  const auto it = country_do53_.find(id);
  return it == country_do53_.end() ? empty_sketch() : it->second;
}

std::size_t StreamSink::unique_clients(std::string_view provider) const {
  const StrId id = names_.find(provider);
  if (id == kNoStrId) return 0;
  for (std::size_t p = 0; p < provider_ids_.size(); ++p) {
    if (provider_ids_[p] == id) return popcount(doh_client_bits_[p]);
  }
  return 0;
}

std::size_t StreamSink::unique_countries(std::string_view provider) const {
  const StrId id = names_.find(provider);
  if (id == kNoStrId) return 0;
  for (std::size_t p = 0; p < provider_ids_.size(); ++p) {
    if (provider_ids_[p] != id) continue;
    std::size_t n = 0;
    for (const auto& [key, sketch] : country_doh1_) {
      n += key.second == p;
    }
    return n;
  }
  return 0;
}

std::size_t StreamSink::do53_clients() const {
  return popcount(do53_client_bits_);
}

std::size_t StreamSink::do53_countries() const {
  return country_do53_.size();
}

std::vector<std::string> StreamSink::analysis_countries(
    int min_clients) const {
  // Unique clients per (country, provider) from the merged bitsets.
  std::map<std::pair<StrId, std::uint32_t>, std::size_t> counts;
  std::vector<bool> provider_seen(provider_ids_.size(), false);
  for (std::uint32_t p = 0; p < doh_client_bits_.size(); ++p) {
    for (std::uint32_t e = 0; e < exit_ids_.size(); ++e) {
      if (!test_bit(doh_client_bits_[p], e)) continue;
      ++counts[{exit_iso2_[e], p}];
      provider_seen[p] = true;
    }
  }
  std::set<StrId> countries;
  for (const auto& [key, n] : counts) countries.insert(key.first);

  std::vector<std::string> out;
  for (const StrId iso2 : countries) {
    bool ok = true;
    for (std::uint32_t p = 0; p < provider_ids_.size(); ++p) {
      if (!provider_seen[p]) continue;
      const auto it = counts.find({iso2, p});
      if (it == counts.end() ||
          it->second < static_cast<std::size_t>(min_clients)) {
        ok = false;
        break;
      }
    }
    if (ok) out.emplace_back(names_.name(iso2));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::string, double> StreamSink::country_doh1_medians(
    std::string_view provider) const {
  std::map<std::string, double> out;
  if (provider.empty()) {
    // All providers: merge the per-(country, provider) sketches per
    // country before querying.
    std::map<StrId, stats::QuantileSketch> merged;
    for (const auto& [key, sketch] : country_doh1_) {
      merged[key.first].merge(sketch);
    }
    for (const auto& [iso2, sketch] : merged) {
      out[std::string(names_.name(iso2))] = sketch.quantile(0.5);
    }
    return out;
  }
  const StrId id = names_.find(provider);
  if (id == kNoStrId) return out;
  for (const auto& [key, sketch] : country_doh1_) {
    if (provider_ids_[key.second] != id) continue;
    out[std::string(names_.name(key.first))] = sketch.quantile(0.5);
  }
  return out;
}

std::map<std::string, double> StreamSink::country_do53_medians() const {
  std::map<std::string, double> out;
  for (const auto& [iso2, sketch] : country_do53_) {
    out[std::string(names_.name(iso2))] = sketch.quantile(0.5);
  }
  return out;
}

std::vector<ClientProviderStat> StreamSink::client_provider_stats() const {
  std::vector<ClientProviderStat> out;
  if (!cfg_.client_stats) return out;
  const std::size_t n_providers = provider_ids_.size();
  std::vector<double> scratch;
  const auto median_of = [&](const std::vector<double>& store,
                             std::size_t slot, std::uint8_t count) {
    scratch.assign(store.begin() + static_cast<std::ptrdiff_t>(
                                       slot * run_cap_),
                   store.begin() + static_cast<std::ptrdiff_t>(
                                       slot * run_cap_ + count));
    return stats::median_inplace(scratch);
  };
  for (std::uint32_t e = 0; e < exit_ids_.size(); ++e) {
    for (std::uint32_t p = 0; p < n_providers; ++p) {
      const std::size_t slot =
          static_cast<std::size_t>(e) * n_providers + p;
      const std::uint8_t count = cs_doh_count_[slot];
      if (count == 0) continue;
      ClientProviderStat s;
      s.exit_id = exit_ids_[e];
      s.iso2 = std::string(names_.name(exit_iso2_[e]));
      s.provider = std::string(names_.name(provider_ids_[p]));
      s.nameserver_distance_miles = exit_ns_distance_[e];
      s.tdoh_ms = median_of(cs_tdoh_, slot, count);
      s.tdohr_ms = median_of(cs_tdohr_, slot, count);
      s.pop_distance_miles = median_of(cs_pop_dist_, slot, count);
      s.potential_improvement_miles = median_of(cs_pot_imp_, slot, count);
      const std::uint8_t d_count = cs_do53_count_[e];
      s.do53_ms = d_count == 0 ? kNaN
                               : median_of(cs_do53_, e, d_count);
      out.push_back(std::move(s));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ClientProviderStat& a,
                      const ClientProviderStat& b) {
                     if (a.exit_id != b.exit_id) return a.exit_id < b.exit_id;
                     return a.provider < b.provider;
                   });
  return out;
}

bool StreamSink::operator==(const StreamSink& other) const {
  return sessions_ == other.sessions_ && failed_ == other.failed_ &&
         doh_rows_ == other.doh_rows_ && do53_rows_ == other.do53_rows_ &&
         atlas_rows_ == other.atlas_rows_ &&
         discarded_mismatch == other.discarded_mismatch &&
         names_ == other.names_ && provider_ids_ == other.provider_ids_ &&
         exit_ids_ == other.exit_ids_ && exit_iso2_ == other.exit_iso2_ &&
         exit_ns_distance_ == other.exit_ns_distance_ &&
         tdoh_all_ == other.tdoh_all_ && tdohr_all_ == other.tdohr_all_ &&
         do53_all_ == other.do53_all_ &&
         tdoh_by_provider_ == other.tdoh_by_provider_ &&
         tdohr_by_provider_ == other.tdohr_by_provider_ &&
         country_doh1_ == other.country_doh1_ &&
         country_do53_ == other.country_do53_ &&
         doh_client_bits_ == other.doh_client_bits_ &&
         do53_client_bits_ == other.do53_client_bits_ &&
         cs_tdoh_ == other.cs_tdoh_ && cs_tdohr_ == other.cs_tdohr_ &&
         cs_pop_dist_ == other.cs_pop_dist_ &&
         cs_pot_imp_ == other.cs_pot_imp_ &&
         cs_doh_count_ == other.cs_doh_count_ &&
         cs_do53_ == other.cs_do53_ &&
         cs_do53_count_ == other.cs_do53_count_;
}

}  // namespace dohperf::measure
