// Deterministic string interner for dataset rows.
//
// Million-session campaigns cannot afford two heap std::strings per
// DohRecord: iso2 and provider names repeat endlessly, so rows carry a
// small integer StrId instead and the Dataset owns one StringTable that
// maps ids back to names. Id assignment is deterministic — ids are
// handed out in intern() call order — and the campaign interns every
// name the sessions can produce on the main thread, in canonical
// catalog/country order, *before* sharding. Worker shards therefore only
// ever read precomputed ids, the table needs no synchronisation, and the
// id of "Cloudflare" is the same for every thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dohperf::measure {

using StrId = std::uint32_t;
inline constexpr StrId kNoStrId = 0xFFFFFFFFu;

class StringTable {
 public:
  StringTable() = default;
  StringTable(const StringTable& other) { *this = other; }
  StringTable& operator=(const StringTable& other);
  StringTable(StringTable&&) = default;
  StringTable& operator=(StringTable&&) = default;

  /// The id of `s`, interning it on first sight. Ids are dense and
  /// assigned in first-intern order.
  StrId intern(std::string_view s);

  /// The id of `s` if already interned; kNoStrId otherwise.
  [[nodiscard]] StrId find(std::string_view s) const;

  /// The name behind an id; empty view for kNoStrId.
  [[nodiscard]] std::string_view name(StrId id) const;

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Equal when both tables interned the same names in the same order —
  /// the determinism-test check that ids are stable across shard counts.
  bool operator==(const StringTable& other) const;

 private:
  // std::deque: growth never moves existing strings, so the lookup map's
  // string_view keys stay valid.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, StrId> ids_;
};

}  // namespace dohperf::measure
