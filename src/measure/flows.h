// The measurement flows of Figure 2.
//
// doh_via_proxy() simulates all 22 steps of the proxied DoH measurement:
// tunnel establishment through the Super Proxy (steps 1-8, yielding the
// timing headers), the tunnelled TLS handshake with the DoH resolver
// (9-14), and the tunnelled query (15-22). It returns both what the
// measurement client could legally observe (timestamps + headers, feeding
// the Equation-7/8 estimators) and the simulator-internal ground truth.
//
// doh_direct() and do53_direct() are the ground-truth variants run "at
// the exit node" for the validation experiments (paper Section 4).
#pragma once

#include <cmath>
#include <limits>
#include <string>

#include "dns/name.h"
#include "measure/estimator.h"
#include "netsim/netctx.h"
#include "proxy/brightdata.h"
#include "proxy/exit_node.h"
#include "proxy/tunnel.h"
#include "resolver/doh_server.h"
#include "resolver/recursive.h"
#include "transport/tls.h"

namespace dohperf::measure {

/// Re-exported for estimator call sites; the constant lives with the
/// Tunnel abstraction now.
using proxy::kSuperProxyForwardMs;

/// Parameters for a proxied DoH measurement.
struct DohProxyParams {
  netsim::Site client;       ///< The measurement client (paper: Illinois).
  netsim::Site super_proxy;  ///< Serving Super Proxy.
  const proxy::ExitNode* exit = nullptr;
  resolver::DohServer* doh = nullptr;  ///< At the anycast-selected PoP.
  std::string doh_hostname;            ///< Bootstrap name (e.g. dns.google).
  transport::TlsVersion tls = transport::TlsVersion::kTls13;
  dns::DomainName origin;              ///< Study zone ("a.com").
};

/// Output of a proxied DoH measurement.
struct DohProxyObservation {
  bool ok = false;
  int http_status = 0;
  /// What the client observed (legal estimator inputs).
  EstimatorInputs inputs;
  /// Simulator-internal ground truth, by component (ms):
  double true_dns_ms = 0.0;      ///< t3+t4 at the exit node.
  double true_connect_ms = 0.0;  ///< t5+t6.
  double true_tls_ms = 0.0;      ///< t11+t12.
  double true_query_ms = 0.0;    ///< t17+t18+t19+t20.

  /// True end-to-end DoH resolution time as defined by Equation 1.
  [[nodiscard]] double true_tdoh_ms() const {
    return true_dns_ms + true_connect_ms + true_tls_ms + true_query_ms;
  }
};

[[nodiscard]] netsim::Task<DohProxyObservation> doh_via_proxy(
    netsim::NetCtx& net, DohProxyParams params);

/// Direct DoH measurement at a controlled vantage (ground truth).
struct DirectDohObservation {
  bool ok = false;
  int http_status = 0;
  double dns_ms = 0.0;
  double connect_ms = 0.0;
  double tls_ms = 0.0;
  double query_ms = 0.0;
  /// A second query on the same session. NaN until that query actually
  /// completes — a flow that fails mid-way must not contribute a bogus
  /// 0 ms warm sample to the reuse CDF.
  double reuse_ms = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] double tdoh_ms() const {
    return dns_ms + connect_ms + tls_ms + query_ms;
  }
  [[nodiscard]] double tdohr_ms() const { return reuse_ms; }
  [[nodiscard]] bool has_reuse() const { return !std::isnan(reuse_ms); }
};

[[nodiscard]] netsim::Task<DirectDohObservation> doh_direct(
    netsim::NetCtx& net, netsim::Site vantage,
    resolver::RecursiveResolver* default_resolver,
    resolver::DohServer& doh, std::string doh_hostname,
    transport::TlsVersion tls, dns::DomainName origin);

/// Parameters for a proxied Do53 measurement (HTTP GET to the study web
/// server, forcing a default-resolver resolution at the exit node).
struct Do53ProxyParams {
  netsim::Site client;
  netsim::Site super_proxy;
  const proxy::ExitNode* exit = nullptr;
  netsim::Site web_server;  ///< a.com's web host.
  dns::DomainName origin;
  /// When true (the 11 Super Proxy countries), DNS resolution happens at
  /// the Super Proxy and the reported value is useless for the study.
  bool resolve_at_super_proxy = false;
  /// Authoritative server the Super Proxy consults in that case.
  resolver::AuthoritativeServer* authority = nullptr;
};

/// Output of a proxied Do53 measurement.
struct Do53ProxyObservation {
  bool ok = false;
  proxy::TunTimeline tun;           ///< dns value = the Do53 query time.
  double brightdata_ms = 0.0;
  bool resolved_at_super_proxy = false;
  /// Ground truth: the exit node's actual resolution time (NaN when the
  /// Super Proxy resolved instead).
  double true_do53_ms = 0.0;
};

[[nodiscard]] netsim::Task<Do53ProxyObservation> do53_via_proxy(
    netsim::NetCtx& net, Do53ProxyParams params);

/// One direct Do53 resolution at a controlled vantage; returns ms.
[[nodiscard]] netsim::Task<double> do53_direct(
    netsim::NetCtx& net, netsim::Site vantage,
    resolver::RecursiveResolver* resolver, dns::DomainName name);

}  // namespace dohperf::measure
