#include "measure/regression.h"

#include <cmath>
#include <stdexcept>

#include "geo/country.h"
#include "stats/summary.h"

namespace dohperf::measure {
namespace {

/// The paper dichotomises "Num ASes" at the global median (25 in their
/// data); we use our world table's median.
int as_count_threshold() {
  static const int median = geo::median_as_count();
  return median;
}

double multiplier_for(const RegressionRow& row, int n) {
  switch (n) {
    case 1:
      return row.multiplier_1;
    case 10:
      return row.multiplier_10;
    case 100:
      return row.multiplier_100;
    case 1000:
      return row.multiplier_1000;
    default:
      throw std::invalid_argument("n must be one of 1/10/100/1000");
  }
}

double delta_for(const RegressionRow& row, int n) {
  switch (n) {
    case 1:
      return row.delta_1;
    case 10:
      return row.delta_10;
    case 100:
      return row.delta_100;
    default:
      throw std::invalid_argument("n must be one of 1/10/100");
  }
}

}  // namespace

std::vector<RegressionRow> regression_rows(const Dataset& dataset) {
  std::vector<RegressionRow> rows;
  for (const ClientProviderStat& s : dataset.client_provider_stats()) {
    if (!s.has_do53() || s.do53_ms <= 0.0) continue;
    const geo::Country* country = geo::find_country(s.iso2);
    if (country == nullptr) continue;

    RegressionRow row;
    row.multiplier_1 = s.tdoh_ms / s.do53_ms;
    row.multiplier_10 = s.doh_n(10) / s.do53_ms;
    row.multiplier_100 = s.doh_n(100) / s.do53_ms;
    row.multiplier_1000 = s.doh_n(1000) / s.do53_ms;
    row.delta_1 = s.tdoh_ms - s.do53_ms;
    row.delta_10 = s.doh_n(10) - s.do53_ms;
    row.delta_100 = s.doh_n(100) - s.do53_ms;
    row.slow_bandwidth = !country->has_fast_internet();
    row.income_group = static_cast<int>(country->income_group());
    row.few_ases = country->num_ases < as_count_threshold();
    row.provider = s.provider;
    row.gdp_per_capita = country->gdp_per_capita_usd;
    row.bandwidth_mbps = country->bandwidth_mbps;
    row.num_ases = country->num_ases;
    row.ns_distance_miles = s.nameserver_distance_miles;
    row.resolver_distance_miles = s.pop_distance_miles;
    rows.push_back(std::move(row));
  }
  return rows;
}

MultiplierMedians multiplier_medians(std::span<const RegressionRow> rows) {
  std::vector<double> m1, m10, m100, m1000;
  m1.reserve(rows.size());
  for (const auto& row : rows) {
    m1.push_back(row.multiplier_1);
    m10.push_back(row.multiplier_10);
    m100.push_back(row.multiplier_100);
    m1000.push_back(row.multiplier_1000);
  }
  MultiplierMedians medians;
  medians.m1 = stats::median(m1);
  medians.m10 = stats::median(m10);
  medians.m100 = stats::median(m100);
  medians.m1000 = stats::median(m1000);
  return medians;
}

stats::LogisticFit fit_slowdown_logistic(std::span<const RegressionRow> rows,
                                         int n_requests) {
  if (rows.empty()) throw std::invalid_argument("no rows");

  std::vector<double> multipliers;
  multipliers.reserve(rows.size());
  for (const auto& row : rows) {
    multipliers.push_back(multiplier_for(row, n_requests));
  }
  const double median_multiplier = stats::median(multipliers);

  // Outcome per the paper: 1 = "worse than the global median multiplier"
  // (the paper codes *better* as success; we flip so odds ratios read as
  // slowdown odds, which is how Table 4 reports them).
  const std::vector<std::string> names = {
      kTermSlowBandwidth, kTermUpperMiddle, kTermLowerMiddle,
      kTermLowIncome,     kTermFewAses,     kTermGoogle,
      kTermNextDns,       kTermQuad9,
  };
  stats::Matrix x(rows.size(), names.size());
  std::vector<double> y(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RegressionRow& row = rows[i];
    x.at(i, 0) = row.slow_bandwidth ? 1.0 : 0.0;
    x.at(i, 1) = row.income_group == 2 ? 1.0 : 0.0;  // upper-middle
    x.at(i, 2) = row.income_group == 1 ? 1.0 : 0.0;  // lower-middle
    x.at(i, 3) = row.income_group == 0 ? 1.0 : 0.0;  // low
    x.at(i, 4) = row.few_ases ? 1.0 : 0.0;
    x.at(i, 5) = row.provider == "Google" ? 1.0 : 0.0;
    x.at(i, 6) = row.provider == "NextDNS" ? 1.0 : 0.0;
    x.at(i, 7) = row.provider == "Quad9" ? 1.0 : 0.0;
    y[i] = multiplier_for(row, n_requests) > median_multiplier ? 1.0 : 0.0;
  }
  return stats::fit_logistic(x, y, names);
}

namespace {

stats::LinearFit fit_linear_impl(std::span<const RegressionRow> rows,
                                 int n_requests) {
  if (rows.empty()) throw std::invalid_argument("no rows");
  const std::vector<std::string> names = {
      kTermGdp, kTermBandwidth, kTermNumAses, kTermNsDistance,
      kTermResolverDistance,
  };
  stats::Matrix x(rows.size(), names.size());
  std::vector<double> y(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RegressionRow& row = rows[i];
    x.at(i, 0) = row.gdp_per_capita;
    x.at(i, 1) = row.bandwidth_mbps;
    x.at(i, 2) = static_cast<double>(row.num_ases);
    x.at(i, 3) = row.ns_distance_miles;
    x.at(i, 4) = row.resolver_distance_miles;
    y[i] = delta_for(row, n_requests);
  }
  return stats::fit_ols(x, y, names);
}

}  // namespace

stats::LinearFit fit_delta_linear(std::span<const RegressionRow> rows,
                                  int n_requests) {
  return fit_linear_impl(rows, n_requests);
}

stats::LinearFit fit_delta_linear_for_provider(
    std::span<const RegressionRow> rows, std::string_view provider) {
  std::vector<RegressionRow> filtered;
  for (const auto& row : rows) {
    if (row.provider == provider) filtered.push_back(row);
  }
  return fit_linear_impl(filtered, 1);
}

}  // namespace dohperf::measure
