#include "anycast/pop.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dohperf::anycast {

Pop make_pop(const geo::City& city) {
  const geo::Country* country = geo::find_country(city.country_iso2);
  if (country == nullptr) {
    throw std::invalid_argument("city " + std::string(city.name) +
                                " has unknown country " +
                                std::string(city.country_iso2));
  }
  Pop pop;
  pop.city = std::string(city.name);
  pop.country_iso2 = std::string(city.country_iso2);
  pop.position = city.position;
  pop.region = country->region;
  return pop;
}

std::size_t nearest_pop_index(std::span<const Pop> pops,
                              const geo::LatLon& p) {
  std::size_t best = 0;
  double best_km = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pops.size(); ++i) {
    const double d = geo::distance_km(p, pops[i].position);
    if (d < best_km) {
      best_km = d;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> pops_by_distance(std::span<const Pop> pops,
                                          const geo::LatLon& p) {
  std::vector<std::size_t> order(pops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> dist(pops.size());
  for (std::size_t i = 0; i < pops.size(); ++i) {
    dist[i] = geo::distance_km(p, pops[i].position);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });
  return order;
}

}  // namespace dohperf::anycast
