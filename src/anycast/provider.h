// DoH provider profiles: catalog + routing behaviour + backbone quality.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "anycast/catalog.h"
#include "anycast/routing.h"
#include "netsim/latency.h"

namespace dohperf::anycast {

/// Static description of a provider deployment.
struct ProviderConfig {
  std::string name;          ///< "Cloudflare" etc.
  std::string doh_hostname;  ///< e.g. "cloudflare-dns.com".
  RoutingParams routing;
  /// Multiplier on the PoP host country's route inflation for the
  /// *client-facing* front-end legs. Anycast providers onboard clients at
  /// nearby edges, so this is usually well below 1; NextDNS's partner-AS
  /// hairpinning puts it above 1.
  double access_factor = 0.6;
  /// Floor on the resulting front-end inflation.
  double access_floor = 1.08;
  /// Multiplier on the host country's route inflation for the backend
  /// resolver's *upstream* legs (PoP -> authoritative). Near 1.0 means
  /// upstream queries ride the same long-haul transit as local ISPs —
  /// which is what the paper's DoHR ~= Do53 parity for Cloudflare
  /// implies.
  double upstream_factor = 1.0;
  /// Floor on the resulting upstream inflation.
  double upstream_floor = 1.15;
  /// PoP access delay (ms, one-way).
  double pop_lastmile_ms = 0.2;
  /// Per-query processing time at the resolver (ms).
  double processing_ms = 0.5;
  double jitter_sigma = 0.05;
  /// Whether backend resolvers forward EDNS Client Subnet (RFC 7871).
  /// Google does; Cloudflare famously refuses on privacy grounds.
  bool sends_ecs = false;
};

/// A provider: configuration plus its instantiated PoP catalog.
class Provider {
 public:
  Provider(ProviderConfig config, std::vector<Pop> pops);

  // Movable but not copyable: the router holds a span over pops_, which
  // stays valid across moves (the heap buffer transfers) but not copies.
  Provider(Provider&&) noexcept = default;
  Provider& operator=(Provider&&) noexcept = default;
  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  /// Routes a client to a PoP index under this provider's anycast policy.
  [[nodiscard]] std::size_t route(const geo::LatLon& client,
                                  geo::Region region,
                                  netsim::Rng& rng) const {
    return router_.select(client, region, rng);
  }

  /// Index of the geographically nearest PoP.
  [[nodiscard]] std::size_t nearest(const geo::LatLon& client) const {
    return router_.nearest(client);
  }

  /// Client-facing front-end site of PoP `index`, given the host
  /// country's route inflation (derived from country covariates by the
  /// world model).
  [[nodiscard]] netsim::Site frontend_site(std::size_t index,
                                           double host_route_inflation) const;
  /// Backend (upstream-facing) site of PoP `index`.
  [[nodiscard]] netsim::Site backend_site(std::size_t index,
                                          double host_route_inflation) const;

  [[nodiscard]] const ProviderConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] std::span<const Pop> pops() const { return pops_; }
  [[nodiscard]] const AnycastRouter& router() const { return router_; }

 private:
  ProviderConfig config_;
  std::vector<Pop> pops_;
  AnycastRouter router_;
};

/// The four studied providers with calibrated routing parameters
/// (calibration targets: paper Figure 6 and Section 5.2).
[[nodiscard]] ProviderConfig cloudflare_config();
[[nodiscard]] ProviderConfig google_config();
[[nodiscard]] ProviderConfig nextdns_config();
[[nodiscard]] ProviderConfig quad9_config();

/// Instantiates all four studied providers in paper order
/// (Cloudflare, Google, NextDNS, Quad9).
[[nodiscard]] std::vector<Provider> studied_providers();

}  // namespace dohperf::anycast
