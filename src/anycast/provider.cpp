#include "anycast/provider.h"

#include <algorithm>
#include <utility>

namespace dohperf::anycast {

Provider::Provider(ProviderConfig config, std::vector<Pop> pops)
    : config_(std::move(config)),
      pops_(std::move(pops)),
      router_(pops_, config_.routing) {}

netsim::Site Provider::frontend_site(std::size_t index,
                                     double host_route_inflation) const {
  const Pop& pop = pops_.at(index);
  netsim::Site site;
  site.position = pop.position;
  site.lastmile_ms = config_.pop_lastmile_ms;
  site.route_inflation =
      std::max(config_.access_floor,
               host_route_inflation * config_.access_factor);
  site.jitter_sigma = config_.jitter_sigma;
  return site;
}

netsim::Site Provider::backend_site(std::size_t index,
                                    double host_route_inflation) const {
  netsim::Site site = frontend_site(index, host_route_inflation);
  site.route_inflation =
      std::max(config_.upstream_floor,
               host_route_inflation * config_.upstream_factor);
  return site;
}

ProviderConfig cloudflare_config() {
  ProviderConfig cfg;
  cfg.name = "Cloudflare";
  cfg.doh_hostname = "cloudflare-dns.com";
  // Figure 6: median potential improvement 46 mi, but 26% of clients
  // could move >= 1000 mi closer — dense catalog, noticeable BGP tail.
  cfg.routing.p_nearest = 0.58;
  cfg.routing.p_neighborhood = 0.22;
  cfg.routing.neighborhood_k = 2;
  cfg.routing.p_region_hub = 0.07;
  cfg.access_factor = 0.75;  // best-connected edge of the four
  cfg.access_floor = 1.10;
  cfg.upstream_factor = 1.22;
  cfg.pop_lastmile_ms = 0.3;
  cfg.processing_ms = 14.0;
  return cfg;
}

ProviderConfig google_config() {
  ProviderConfig cfg;
  cfg.name = "Google";
  cfg.doh_hostname = "dns.google";
  cfg.sends_ecs = true;
  // Few PoPs but disciplined routing: only 10% of clients >= 1000 mi from
  // optimal; median improvement 44 mi.
  cfg.routing.p_nearest = 0.62;
  cfg.routing.p_neighborhood = 0.31;
  cfg.routing.neighborhood_k = 2;
  cfg.routing.p_region_hub = 0.02;
  cfg.access_factor = 0.55;  // clients onboard at the nearest Google edge
  cfg.access_floor = 1.05;
  cfg.upstream_factor = 1.55;  // centralised backend resolution
  cfg.pop_lastmile_ms = 0.5;
  cfg.processing_ms = 85.0;
  return cfg;
}

ProviderConfig nextdns_config() {
  ProviderConfig cfg;
  cfg.name = "NextDNS";
  cfg.doh_hostname = "dns.nextdns.io";
  // Unicast-style steering to the nearest partner resolver: median
  // improvement just 6 mi.
  cfg.routing.p_nearest = 0.90;
  cfg.routing.p_neighborhood = 0.07;
  cfg.routing.neighborhood_k = 2;
  cfg.routing.p_region_hub = 0.01;
  // Partner-AS hosting: traffic hairpins through third-party networks.
  cfg.access_factor = 1.25;  // partner-AS hairpinning on the client legs
  cfg.access_floor = 1.30;
  cfg.upstream_factor = 1.65;
  // Hairpinning through the partner AS adds a fixed detour on every leg.
  cfg.pop_lastmile_ms = 12.0;
  cfg.processing_ms = 28.0;
  return cfg;
}

ProviderConfig quad9_config() {
  ProviderConfig cfg;
  cfg.name = "Quad9";
  cfg.doh_hostname = "dns.quad9.net";
  // Paper: only 21% of clients assigned to the closest PoP; median
  // potential improvement 769 mi — routes collapse onto regional hubs.
  cfg.routing.p_nearest = 0.21;
  cfg.routing.p_neighborhood = 0.20;
  cfg.routing.neighborhood_k = 4;
  cfg.routing.p_region_hub = 0.40;
  cfg.access_factor = 0.75;
  cfg.access_floor = 1.10;
  cfg.upstream_factor = 1.40;
  cfg.pop_lastmile_ms = 1.0;
  cfg.processing_ms = 45.0;
  return cfg;
}

std::vector<Provider> studied_providers() {
  std::vector<Provider> providers;
  providers.reserve(4);
  providers.emplace_back(cloudflare_config(), cloudflare_pops());
  providers.emplace_back(google_config(), google_pops());
  providers.emplace_back(nextdns_config(), nextdns_pops());
  providers.emplace_back(quad9_config(), quad9_pops());
  return providers;
}

}  // namespace dohperf::anycast
