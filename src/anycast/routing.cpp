#include "anycast/routing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "geo/country.h"

namespace dohperf::anycast {
namespace {

constexpr std::size_t kRegionCount = 11;

}  // namespace

geo::LatLon region_centroid(geo::Region region) {
  // Spherical mean of country centroids, weighted equally; adequate for
  // hub placement.
  double x = 0, y = 0, z = 0;
  int n = 0;
  for (const geo::Country& c : geo::world_table()) {
    if (c.region != region) continue;
    const double lat = c.centroid.lat * std::numbers::pi / 180.0;
    const double lon = c.centroid.lon * std::numbers::pi / 180.0;
    x += std::cos(lat) * std::cos(lon);
    y += std::cos(lat) * std::sin(lon);
    z += std::sin(lat);
    ++n;
  }
  if (n == 0) return {};
  x /= n;
  y /= n;
  z /= n;
  const double lat = std::atan2(z, std::hypot(x, y));
  const double lon = std::atan2(y, x);
  return {lat * 180.0 / std::numbers::pi, lon * 180.0 / std::numbers::pi};
}

AnycastRouter::AnycastRouter(std::span<const Pop> pops, RoutingParams params)
    : pops_(pops), params_(params) {
  assert(!pops.empty());
  assert(params_.p_global() >= -1e-9);
  hub_by_region_.resize(kRegionCount);
  for (std::size_t r = 0; r < kRegionCount; ++r) {
    const auto centroid = region_centroid(static_cast<geo::Region>(r));
    hub_by_region_[r] = nearest_pop_index(pops_, centroid);
  }
}

std::size_t AnycastRouter::region_hub(geo::Region region) const {
  return hub_by_region_[static_cast<std::size_t>(region)];
}

std::size_t AnycastRouter::select(const geo::LatLon& where,
                                  geo::Region region,
                                  netsim::Rng& rng) const {
  const double u = rng.uniform();

  if (u < params_.p_nearest) return nearest(where);

  if (u < params_.p_nearest + params_.p_neighborhood) {
    // A "detour": uniformly one of the k nearest *non-optimal* PoPs
    // (BGP prefers a peer one metro over).
    const std::size_t k =
        std::min(params_.neighborhood_k, pops_.size() - 1);
    if (k == 0) return nearest(where);
    const auto order = pops_by_distance(pops_, where);
    const auto pick = 1 + static_cast<std::size_t>(rng.uniform_int(
                              0, static_cast<std::int64_t>(k) - 1));
    return order[pick];
  }

  if (u < params_.p_nearest + params_.p_neighborhood + params_.p_region_hub) {
    return region_hub(region);
  }

  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pops_.size()) - 1));
}

}  // namespace dohperf::anycast
