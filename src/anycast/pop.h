// Points-of-presence for anycast DoH services.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/cities.h"
#include "geo/coordinates.h"
#include "geo/country.h"

namespace dohperf::anycast {

/// One provider point-of-presence, hosted in a metro area.
struct Pop {
  std::string city;           ///< Metro name (from geo::city_table).
  std::string country_iso2;   ///< Host country.
  geo::LatLon position;
  geo::Region region;

  friend bool operator==(const Pop&, const Pop&) = default;
};

/// Builds a Pop from a city-table entry. The host country must exist in
/// the world table (checked; throws std::invalid_argument otherwise).
[[nodiscard]] Pop make_pop(const geo::City& city);

/// Index of the PoP nearest to `p`; requires a non-empty span.
[[nodiscard]] std::size_t nearest_pop_index(std::span<const Pop> pops,
                                            const geo::LatLon& p);

/// Indices of all PoPs ordered by increasing distance from `p`.
[[nodiscard]] std::vector<std::size_t> pops_by_distance(
    std::span<const Pop> pops, const geo::LatLon& p);

}  // namespace dohperf::anycast
