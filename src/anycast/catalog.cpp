#include "anycast/catalog.h"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>
#include <string>

#include "geo/country.h"

namespace dohperf::anycast {
namespace {

using geo::Region;

/// Countries no studied provider serves from inside (the paper found 99%
/// of DoH queries from Chinese exit nodes were dropped in 2021).
bool excluded_host(std::string_view iso2) {
  return iso2 == "CN" || iso2 == "KP";
}

/// Round-robin across regions in a fixed order, taking each region's
/// cities in table order, until `target` PoPs are selected. `keep`
/// filters candidate cities.
template <typename Filter>
std::vector<Pop> region_balanced(std::size_t target, Filter keep) {
  // Group candidate cities by host-country region, preserving table order
  // (the table lists each region's most prominent metros first).
  std::map<Region, std::vector<const geo::City*>> by_region;
  for (const geo::City& city : geo::city_table()) {
    if (excluded_host(city.country_iso2)) continue;
    const geo::Country* country = geo::find_country(city.country_iso2);
    if (country == nullptr || !keep(city, *country)) continue;
    by_region[country->region].push_back(&city);
  }

  std::vector<Pop> pops;
  pops.reserve(target);
  std::map<Region, std::size_t> cursor;
  while (pops.size() < target) {
    bool any = false;
    for (auto& [region, cities] : by_region) {
      auto& i = cursor[region];
      if (i >= cities.size()) continue;
      pops.push_back(make_pop(*cities[i++]));
      any = true;
      if (pops.size() == target) break;
    }
    if (!any) break;  // candidates exhausted
  }
  return pops;
}

}  // namespace

std::vector<Pop> cloudflare_pops() {
  // Broad, region-balanced build-out; explicitly includes Dakar.
  auto pops = region_balanced(kCloudflarePopCount,
                              [](const geo::City&, const geo::Country&) {
                                return true;
                              });
  const bool has_dakar =
      std::any_of(pops.begin(), pops.end(),
                  [](const Pop& p) { return p.city == "Dakar"; });
  if (!has_dakar) {
    if (const geo::City* dakar = geo::find_city("Dakar")) {
      pops.back() = make_pop(*dakar);
    }
  }
  return pops;
}

std::vector<Pop> google_pops() {
  // Hand-picked hub metros matching Google's centralised strategy: no
  // African PoP was observed in the paper.
  constexpr std::array<std::string_view, kGooglePopCount> kHubs{
      "Ashburn",     "Chicago",   "Dallas",     "Los Angeles",
      "San Jose",    "Seattle",   "Atlanta",    "New York",
      "Toronto",     "Sao Paulo", "Santiago",   "London",
      "Frankfurt",   "Amsterdam", "Paris",      "Madrid",
      "Warsaw",      "Stockholm", "Milan",      "Mumbai",
      "Singapore",   "Tokyo",     "Taipei",     "Hong Kong",
      "Sydney",      "Tel Aviv",
  };
  std::vector<Pop> pops;
  pops.reserve(kHubs.size());
  for (const auto name : kHubs) {
    const geo::City* city = geo::find_city(name);
    if (city == nullptr) {
      throw std::logic_error("google_pops: missing city " +
                             std::string(name));
    }
    pops.push_back(make_pop(*city));
  }
  return pops;
}

std::vector<Pop> nextdns_pops() {
  // Partner-hosted resolvers: only in markets with solid infrastructure
  // (fast nationwide broadband), which skews away from Africa and other
  // low-investment regions.
  return region_balanced(kNextDnsPopCount,
                         [](const geo::City&, const geo::Country& country) {
                           return country.bandwidth_mbps >= 20.0;
                         });
}

std::vector<Pop> quad9_pops() {
  // Every African metro first (paper: "far more points of presence in
  // Sub-Saharan Africa than other resolvers"), then region-balanced fill.
  std::vector<Pop> pops;
  for (const geo::City& city : geo::city_table()) {
    if (excluded_host(city.country_iso2)) continue;
    const geo::Country* country = geo::find_country(city.country_iso2);
    if (country != nullptr && country->region == Region::kAfrica) {
      pops.push_back(make_pop(city));
    }
  }
  const auto rest = region_balanced(
      kQuad9PopCount, [](const geo::City&, const geo::Country&) {
        return true;
      });
  for (const Pop& p : rest) {
    if (pops.size() >= kQuad9PopCount) break;
    if (std::none_of(pops.begin(), pops.end(),
                     [&](const Pop& q) { return q.city == p.city; })) {
      pops.push_back(p);
    }
  }
  return pops;
}

std::vector<Pop> pops_for(std::string_view provider) {
  if (provider == "Cloudflare") return cloudflare_pops();
  if (provider == "Google") return google_pops();
  if (provider == "NextDNS") return nextdns_pops();
  if (provider == "Quad9") return quad9_pops();
  throw std::invalid_argument("unknown provider: " + std::string(provider));
}

}  // namespace dohperf::anycast
