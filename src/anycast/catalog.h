// PoP catalog construction for the four studied providers.
//
// The paper observed 146 PoPs for Cloudflare, 26 for Google (none in
// Africa), 107 for NextDNS (partner-hosted, concentrated in developed
// markets), and the densest Sub-Saharan African coverage for Quad9. We
// synthesise catalogs with those properties from the embedded city table.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "anycast/pop.h"

namespace dohperf::anycast {

/// The four studied providers in the paper's canonical order — the same
/// order studied_providers() builds them and the campaign enumerates
/// them. This is the single source of truth: benches, the scenario
/// layer, and reports must consume it instead of re-declaring the list.
inline constexpr const char* kProviderNames[] = {"Cloudflare", "Google",
                                                 "NextDNS", "Quad9"};
inline constexpr std::size_t kProviderCount =
    sizeof(kProviderNames) / sizeof(kProviderNames[0]);

/// Observed catalog sizes from the paper (Section 5.2).
inline constexpr std::size_t kCloudflarePopCount = 146;
inline constexpr std::size_t kGooglePopCount = 26;
inline constexpr std::size_t kNextDnsPopCount = 107;
inline constexpr std::size_t kQuad9PopCount = 152;

/// 146 PoPs with broad region-balanced coverage (the only provider with a
/// PoP in Senegal, per the paper).
[[nodiscard]] std::vector<Pop> cloudflare_pops();

/// 26 hub PoPs, none in Africa.
[[nodiscard]] std::vector<Pop> google_pops();

/// 107 partner-hosted PoPs, skewed to well-provisioned markets.
[[nodiscard]] std::vector<Pop> nextdns_pops();

/// ~152 PoPs including every African metro in the city table.
[[nodiscard]] std::vector<Pop> quad9_pops();

/// Catalog by provider name ("Cloudflare", "Google", "NextDNS", "Quad9");
/// throws std::invalid_argument for unknown names.
[[nodiscard]] std::vector<Pop> pops_for(std::string_view provider);

}  // namespace dohperf::anycast
