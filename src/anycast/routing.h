// Anycast PoP-selection policies.
//
// BGP anycast does not reliably deliver clients to their geographically
// nearest PoP (paper Section 7, citing Li et al.). We model selection as a
// mixture: exact-nearest with probability p_nearest, a uniform draw among
// the k nearest ("neighbourhood" — small detours from peering topology),
// the client's continental hub (routes collapsing onto a regional transit
// hub), or a uniform global draw (pathological BGP paths). The mixture
// weights are per-provider, calibrated against Figure 6 of the paper.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "anycast/pop.h"
#include "netsim/random.h"

namespace dohperf::anycast {

/// Mixture weights for PoP selection; must sum to <= 1, with the
/// remainder assigned to the global-random component.
struct RoutingParams {
  double p_nearest = 1.0;       ///< Exact nearest PoP.
  /// A small detour: uniform among the `neighborhood_k` nearest PoPs
  /// *excluding* the optimum.
  double p_neighborhood = 0.0;
  std::size_t neighborhood_k = 4;
  double p_region_hub = 0.0;    ///< The provider's hub for the client's region.

  /// Remaining probability mass: uniform over the whole catalog.
  [[nodiscard]] double p_global() const {
    return 1.0 - p_nearest - p_neighborhood - p_region_hub;
  }
};

/// Stateless selection engine over a fixed catalog.
class AnycastRouter {
 public:
  /// Precomputes regional hubs (the catalog PoP nearest to each region's
  /// population centroid). `pops` must stay alive and unchanged.
  AnycastRouter(std::span<const Pop> pops, RoutingParams params);

  /// Selects the PoP index serving a client at `where` in `region`.
  [[nodiscard]] std::size_t select(const geo::LatLon& where,
                                   geo::Region region,
                                   netsim::Rng& rng) const;

  /// Exact-nearest index (used for "potential improvement" analysis).
  [[nodiscard]] std::size_t nearest(const geo::LatLon& where) const {
    return nearest_pop_index(pops_, where);
  }

  [[nodiscard]] const RoutingParams& params() const { return params_; }
  [[nodiscard]] std::span<const Pop> pops() const { return pops_; }
  /// The hub PoP index for `region`.
  [[nodiscard]] std::size_t region_hub(geo::Region region) const;

 private:
  std::span<const Pop> pops_;
  RoutingParams params_;
  std::vector<std::size_t> hub_by_region_;
};

/// Population centroid of all world-table countries in `region`.
[[nodiscard]] geo::LatLon region_centroid(geo::Region region);

}  // namespace dohperf::anycast
