// Descriptive statistics used throughout the analysis (the paper reports
// medians almost exclusively).
#pragma once

#include <span>
#include <vector>

namespace dohperf::stats {

/// Median of a sample; NaN for an empty sample. Does not modify input.
[[nodiscard]] double median(std::span<const double> xs);

/// Quantile in [0,1] with linear interpolation between order statistics
/// (type-7, the R/NumPy default); NaN for an empty sample.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// quantile() over a sample the caller allows to be reordered: selects
/// the two order statistics with nth_element instead of copying and
/// sorting. Identical result, O(n) instead of O(n log n).
[[nodiscard]] double quantile_inplace(std::span<double> xs, double q);

/// quantile() over an already-ascending sample; no copy, no sort.
[[nodiscard]] double quantile_sorted(std::span<const double> xs, double q);

/// median() over a sample the caller allows to be reordered.
[[nodiscard]] double median_inplace(std::span<double> xs);

[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); NaN for n < 2.
[[nodiscard]] double stdev(std::span<const double> xs);

[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Fraction of values strictly below `threshold`; NaN when empty.
[[nodiscard]] double fraction_below(std::span<const double> xs,
                                    double threshold);

}  // namespace dohperf::stats
