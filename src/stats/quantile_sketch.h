// A mergeable, deterministic quantile sketch.
//
// Fixed log-spaced buckets (1/32 octave, ~2.2% relative width) over the
// latency range the campaign produces, plus underflow/overflow buckets
// and exact min/max. Because the bucket edges are compile-time constants,
// merging two sketches is element-wise integer addition — commutative,
// associative, and therefore bit-identical for any shard count or merge
// order, which is the property the streaming campaign's determinism gate
// rests on. Quantile queries interpolate within a bucket and are a pure
// function of the (merged) counts, never of insertion order.
//
// Contrast with stats::EmpiricalCdf, which retains the full sample: a
// sketch is ~6 KB regardless of how many values it absorbed.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dohperf::stats {

class QuantileSketch {
 public:
  /// Bucket geometry: kBucketsPerOctave buckets per doubling, spanning
  /// [kMinValue, kMaxValue); values outside land in the underflow /
  /// overflow buckets and are still bounded by the exact min/max.
  static constexpr int kBucketsPerOctave = 32;
  static constexpr int kOctaves = 24;  // 2^-4 .. 2^20 (0.0625 .. ~1e6 ms)
  static constexpr double kMinValue = 0.0625;
  static constexpr int kLogBuckets = kBucketsPerOctave * kOctaves;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kLogBuckets) + 2;  // + underflow + overflow

  void record(double value);

  /// Element-wise bucket addition; min/max combine. Order-canonical:
  /// a.merge(b) == b.merge(a) for the resulting counts.
  void merge(const QuantileSketch& other);

  /// Interpolated quantile estimate; NaN when empty. q is clamped to
  /// [0,1]; q=0 / q=1 return the exact min / max.
  [[nodiscard]] double quantile(double q) const;

  /// (value, cumulative_fraction) pairs on `points` evenly spaced
  /// quantiles — the sketch analogue of EmpiricalCdf::curve().
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points = 100) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  bool operator==(const QuantileSketch&) const = default;

 private:
  static std::size_t bucket_index(double value);
  static double lower_edge(std::size_t bucket);

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dohperf::stats
