// Distribution functions for significance testing.
#pragma once

namespace dohperf::stats {

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Two-sided p-value for a z (or large-df t) statistic.
[[nodiscard]] double two_sided_p(double z);

}  // namespace dohperf::stats
