#include "stats/matrix.h"

#include <cmath>
#include <optional>
#include <stdexcept>

namespace dohperf::stats {
namespace {

/// Cholesky factorisation A = L L'; nullopt if not positive definite.
std::optional<Matrix> cholesky(const Matrix& a) {
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return std::nullopt;
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

std::optional<Matrix> cholesky_with_ridge(const Matrix& a) {
  if (auto l = cholesky(a)) return l;
  // Escalating jitter on the diagonal for near-singular designs
  // (e.g. collinear dummies).
  double ridge = 1e-10;
  for (int attempt = 0; attempt < 8; ++attempt, ridge *= 100.0) {
    Matrix aj = a;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      aj.at(i, i) += ridge * (1.0 + std::abs(a.at(i, i)));
    }
    if (auto l = cholesky(aj)) return l;
  }
  return std::nullopt;
}

/// Solves L y = b (forward) then L' x = y (backward).
std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  const std::size_t n = l.rows();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * y[k];
    y[i] = sum / l.at(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l.at(k, ii) * x[k];
    x[ii] = sum / l.at(ii, ii);
  }
  return x;
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  Matrix m(rows.size(), rows.size() == 0 ? 0 : rows.begin()->size());
  std::size_t r = 0;
  for (const auto& row : rows) {
    if (row.size() != m.cols_) {
      throw std::invalid_argument("ragged initializer");
    }
    std::size_t c = 0;
    for (const double v : row) m.at(r, c++) = v;
    ++r;
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.at(i, j) += aik * rhs.at(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  if (cols_ != v.size()) throw std::invalid_argument("shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += at(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = at(r, i);
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) {
        g.at(i, j) += xi * at(r, j);
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g.at(i, j) = g.at(j, i);
  }
  return g;
}

std::vector<double> Matrix::transpose_times(std::span<const double> v) const {
  if (rows_ != v.size()) throw std::invalid_argument("shape mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += at(r, c) * vr;
  }
  return out;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    throw std::invalid_argument("solve_spd: shape mismatch");
  }
  const auto l = cholesky_with_ridge(a);
  if (!l) throw std::runtime_error("solve_spd: matrix not positive definite");
  return cholesky_solve(*l, b);
}

Matrix invert_spd(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("invert_spd: not square");
  }
  const auto l = cholesky_with_ridge(a);
  if (!l) throw std::runtime_error("invert_spd: matrix not positive definite");
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const auto col = cholesky_solve(*l, e);
    for (std::size_t i = 0; i < n; ++i) inv.at(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

}  // namespace dohperf::stats
