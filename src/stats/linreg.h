// Ordinary least squares with the paper's reporting conventions.
//
// Table 5/6 report raw coefficients plus "scaled" coefficients obtained by
// min-max scaling each explanatory variable to [0, 1]; the scaled
// coefficient is then coef * (max - min), i.e. the predicted outcome
// change across the variable's full observed range.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/matrix.h"

namespace dohperf::stats {

/// Per-term OLS output.
struct LinearTerm {
  std::string name;
  double coef = 0.0;
  double scaled_coef = 0.0;  ///< coef x observed range of the variable.
  double std_error = 0.0;
  double t_stat = 0.0;
  double p_value = 1.0;
};

/// Whole-model OLS output.
struct LinearFit {
  std::vector<LinearTerm> terms;  ///< Intercept first.
  double r_squared = 0.0;
  double sigma = 0.0;  ///< Residual standard error.
  std::size_t n = 0;

  /// Term lookup by name; throws std::out_of_range if absent.
  [[nodiscard]] const LinearTerm& term(std::string_view name) const;
};

/// Fits y ~ 1 + X. `names` labels X's columns (size == X.cols()).
/// Requires X.rows() == y.size() > X.cols() + 1.
[[nodiscard]] LinearFit fit_ols(const Matrix& x, std::span<const double> y,
                                std::span<const std::string> names);

}  // namespace dohperf::stats
