// Empirical cumulative distribution functions (paper Figures 4 and 6).
#pragma once

#include <span>
#include <vector>

namespace dohperf::stats {

/// An empirical CDF over a fixed sample.
class EmpiricalCdf {
 public:
  /// Copies and sorts the sample. Empty samples are allowed; queries on
  /// them return NaN.
  explicit EmpiricalCdf(std::span<const double> sample);

  /// F(x): fraction of the sample <= x.
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF with interpolation; q in [0,1].
  [[nodiscard]] double value_at(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Evaluates the CDF on `points` evenly spaced quantiles, returning
  /// (value, cumulative_fraction) pairs for plotting.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points = 100) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace dohperf::stats
