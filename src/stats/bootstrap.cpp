#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/summary.h"

namespace dohperf::stats {

BootstrapInterval bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    netsim::Rng& rng, int resamples, double confidence) {
  if (sample.empty()) {
    throw std::invalid_argument("bootstrap_ci: empty sample");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_ci: bad confidence");
  }
  if (resamples < 2) {
    throw std::invalid_argument("bootstrap_ci: need >= 2 resamples");
  }

  BootstrapInterval interval;
  interval.point = statistic(sample);
  interval.confidence = confidence;

  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  const auto n = static_cast<std::int64_t>(sample.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& x : resample) {
      x = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    stats.push_back(statistic(resample));
  }

  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = quantile(stats, alpha);
  interval.hi = quantile(stats, 1.0 - alpha);
  return interval;
}

BootstrapInterval median_ci(std::span<const double> sample,
                            netsim::Rng& rng, int resamples,
                            double confidence) {
  return bootstrap_ci(
      sample, [](std::span<const double> xs) { return median(xs); }, rng,
      resamples, confidence);
}

}  // namespace dohperf::stats
