#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dohperf::stats {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

std::size_t QuantileSketch::bucket_index(double value) {
  if (!(value >= kMinValue)) return 0;  // underflow (also NaN-safe)
  const double octaves = std::log2(value / kMinValue);
  const auto idx = static_cast<long>(octaves *
                                     static_cast<double>(kBucketsPerOctave));
  if (idx >= kLogBuckets) return kBuckets - 1;  // overflow
  return static_cast<std::size_t>(idx) + 1;
}

double QuantileSketch::lower_edge(std::size_t bucket) {
  // bucket 0 is underflow (edge 0); log bucket i starts at kMinValue *
  // 2^(i / kBucketsPerOctave); the overflow bucket starts at the range top.
  if (bucket == 0) return 0.0;
  return kMinValue *
         std::exp2(static_cast<double>(bucket - 1) /
                   static_cast<double>(kBucketsPerOctave));
}

void QuantileSketch::record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++counts_[bucket_index(value)];
  ++count_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;

  // Type-7 style continuous rank over the bucketed counts, interpolating
  // linearly between a bucket's clamped edges.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = counts_[b];
    if (n == 0) continue;
    if (rank < static_cast<double>(before + n)) {
      const double lo = std::max(lower_edge(b), min_);
      const double hi =
          std::min(b + 1 < kBuckets ? lower_edge(b + 1) : max_, max_);
      const double f =
          (rank - static_cast<double>(before)) / static_cast<double>(n);
      return std::clamp(lo + f * (hi - lo), min_, max_);
    }
    before += n;
  }
  return max_;
}

std::vector<std::pair<double, double>> QuantileSketch::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0 || points == 0) return out;
  out.reserve(points + 1);
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace dohperf::stats
