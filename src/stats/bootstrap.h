// Bootstrap confidence intervals for medians and other statistics.
//
// The paper reports point medians; for a simulation-based reproduction it
// is useful to know how tight those medians are, so the benches can print
// uncertainty alongside each headline value.
#pragma once

#include <functional>
#include <span>

#include "netsim/random.h"

namespace dohperf::stats {

/// A two-sided percentile-bootstrap confidence interval.
struct BootstrapInterval {
  double point = 0.0;  ///< Statistic on the original sample.
  double lo = 0.0;
  double hi = 0.0;
  double confidence = 0.95;

  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] bool contains(double v) const { return v >= lo && v <= hi; }
};

/// Percentile bootstrap for an arbitrary statistic. `resamples` draws of
/// size n with replacement; interval from the (1-conf)/2 quantiles.
/// Requires a non-empty sample and 0 < confidence < 1.
[[nodiscard]] BootstrapInterval bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    netsim::Rng& rng, int resamples = 1000, double confidence = 0.95);

/// Convenience: bootstrap CI of the median.
[[nodiscard]] BootstrapInterval median_ci(std::span<const double> sample,
                                          netsim::Rng& rng,
                                          int resamples = 1000,
                                          double confidence = 0.95);

}  // namespace dohperf::stats
