#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace dohperf::stats {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

double quantile_inplace(std::span<double> xs, double q) {
  if (xs.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const double h = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  // Select the lo-th order statistic; when the rank falls between two
  // statistics, the (lo+1)-th is the smallest element of the upper
  // partition nth_element leaves behind. Same values a full sort would
  // produce, in O(n).
  const auto nth = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), nth, xs.end());
  const double vlo = *nth;
  if (frac == 0.0 || lo + 1 >= xs.size()) return vlo;
  const double vhi = *std::min_element(nth + 1, xs.end());
  return vlo + frac * (vhi - vlo);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return kNaN;
  std::vector<double> scratch(xs.begin(), xs.end());
  return quantile_inplace(scratch, q);
}

double quantile_sorted(std::span<const double> xs, double q) {
  if (xs.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const double h = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double median_inplace(std::span<double> xs) {
  return quantile_inplace(xs, 0.5);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return kNaN;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return kNaN;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return kNaN;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return kNaN;
  return *std::max_element(xs.begin(), xs.end());
}

double fraction_below(std::span<const double> xs, double threshold) {
  if (xs.empty()) return kNaN;
  const auto n = std::count_if(xs.begin(), xs.end(),
                               [&](double x) { return x < threshold; });
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

}  // namespace dohperf::stats
