#include "stats/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dohperf::stats {

ZipfSampler::ZipfSampler(std::size_t n, double s) : exponent_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty catalog");
  if (!(s > 0.0)) throw std::invalid_argument("ZipfSampler: exponent <= 0");
  cumulative_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cumulative_[i] = total;
  }
  total_ = total;
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against rounding below u = 1.
}

std::size_t ZipfSampler::operator()(netsim::Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cumulative_.size()) return 0.0;
  return 1.0 / std::pow(static_cast<double>(rank + 1), exponent_) / total_;
}

}  // namespace dohperf::stats
