// Logistic regression via iteratively reweighted least squares.
//
// Table 4 of the paper models whether a client beats the global median
// DoH/Do53 slowdown multiplier as a binary outcome of categorical
// covariates, and reports effect sizes as odds ratios.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/matrix.h"

namespace dohperf::stats {

/// Per-term logistic output.
struct LogisticTerm {
  std::string name;
  double coef = 0.0;        ///< Log-odds coefficient.
  double odds_ratio = 1.0;  ///< exp(coef).
  double std_error = 0.0;
  double z_stat = 0.0;
  double p_value = 1.0;
};

/// Whole-model logistic output.
struct LogisticFit {
  std::vector<LogisticTerm> terms;  ///< Intercept first.
  double log_likelihood = 0.0;
  std::size_t n = 0;
  int iterations = 0;
  bool converged = false;

  [[nodiscard]] const LogisticTerm& term(std::string_view name) const;

  /// Predicted probability for a feature row (without intercept column).
  [[nodiscard]] double predict(std::span<const double> features) const;
};

/// Fits P(y=1) = sigmoid(b0 + X b). `y` entries must be 0 or 1.
/// IRLS with step-halving; throws on dimension errors.
[[nodiscard]] LogisticFit fit_logistic(const Matrix& x,
                                       std::span<const double> y,
                                       std::span<const std::string> names,
                                       int max_iter = 50,
                                       double tol = 1e-8);

}  // namespace dohperf::stats
