#include "stats/logreg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace dohperf::stats {
namespace {

double sigmoid(double t) {
  if (t >= 0) {
    const double e = std::exp(-t);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(t);
  return e / (1.0 + e);
}

double log_likelihood(std::span<const double> y,
                      std::span<const double> eta) {
  double ll = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    // log sigma(eta) and log(1 - sigma(eta)) in a numerically stable form.
    const double t = eta[i];
    const double log1pe = t > 30 ? t : std::log1p(std::exp(t));
    ll += y[i] * t - log1pe;
  }
  return ll;
}

}  // namespace

const LogisticTerm& LogisticFit::term(std::string_view name) const {
  for (const auto& t : terms) {
    if (t.name == name) return t;
  }
  throw std::out_of_range("no term named " + std::string(name));
}

double LogisticFit::predict(std::span<const double> features) const {
  if (features.size() + 1 != terms.size()) {
    throw std::invalid_argument("feature count mismatch");
  }
  double eta = terms[0].coef;
  for (std::size_t i = 0; i < features.size(); ++i) {
    eta += terms[i + 1].coef * features[i];
  }
  return sigmoid(eta);
}

LogisticFit fit_logistic(const Matrix& x, std::span<const double> y,
                         std::span<const std::string> names, int max_iter,
                         double tol) {
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  if (names.size() != k) throw std::invalid_argument("names size mismatch");
  if (y.size() != n) throw std::invalid_argument("y size mismatch");
  for (const double v : y) {
    if (v != 0.0 && v != 1.0) {
      throw std::invalid_argument("y must be binary");
    }
  }

  Matrix design(n, k + 1);
  for (std::size_t r = 0; r < n; ++r) {
    design.at(r, 0) = 1.0;
    for (std::size_t c = 0; c < k; ++c) design.at(r, c + 1) = x.at(r, c);
  }

  std::vector<double> beta(k + 1, 0.0);
  std::vector<double> eta(n, 0.0);
  double ll = log_likelihood(y, eta);

  LogisticFit fit;
  fit.n = n;

  for (int iter = 0; iter < max_iter; ++iter) {
    // Weighted Gram: X' W X with w_i = p_i (1 - p_i), and the score
    // X' (y - p).
    Matrix xtwx(k + 1, k + 1);
    std::vector<double> score(k + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(eta[i]);
      const double w = std::max(p * (1.0 - p), 1e-10);
      const double resid = y[i] - p;
      for (std::size_t a = 0; a <= k; ++a) {
        const double xa = design.at(i, a);
        score[a] += xa * resid;
        for (std::size_t b = a; b <= k; ++b) {
          xtwx.at(a, b) += w * xa * design.at(i, b);
        }
      }
    }
    for (std::size_t a = 0; a <= k; ++a) {
      for (std::size_t b = 0; b < a; ++b) xtwx.at(a, b) = xtwx.at(b, a);
    }

    const std::vector<double> delta = solve_spd(xtwx, score);

    // Newton step with halving to guarantee likelihood ascent.
    double step = 1.0;
    double new_ll = -1e300;
    std::vector<double> new_beta(k + 1), new_eta(n);
    for (int halving = 0; halving < 30; ++halving, step *= 0.5) {
      for (std::size_t a = 0; a <= k; ++a) {
        new_beta[a] = beta[a] + step * delta[a];
      }
      new_eta = design * std::span<const double>(new_beta);
      new_ll = log_likelihood(y, new_eta);
      if (new_ll >= ll - 1e-12) break;
    }

    const double improvement = new_ll - ll;
    beta = std::move(new_beta);
    eta = std::move(new_eta);
    ll = new_ll;
    fit.iterations = iter + 1;
    if (std::abs(improvement) < tol) {
      fit.converged = true;
      break;
    }
  }

  // Covariance from the final information matrix.
  Matrix xtwx(k + 1, k + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = sigmoid(eta[i]);
    const double w = std::max(p * (1.0 - p), 1e-10);
    for (std::size_t a = 0; a <= k; ++a) {
      for (std::size_t b = a; b <= k; ++b) {
        xtwx.at(a, b) += w * design.at(i, a) * design.at(i, b);
      }
    }
  }
  for (std::size_t a = 0; a <= k; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtwx.at(a, b) = xtwx.at(b, a);
  }
  const Matrix cov = invert_spd(xtwx);

  fit.log_likelihood = ll;
  for (std::size_t j = 0; j <= k; ++j) {
    LogisticTerm term;
    term.name = j == 0 ? "(intercept)" : names[j - 1];
    term.coef = beta[j];
    term.odds_ratio = std::exp(beta[j]);
    term.std_error = std::sqrt(std::max(0.0, cov.at(j, j)));
    term.z_stat = term.std_error > 0.0 ? term.coef / term.std_error : 0.0;
    term.p_value = two_sided_p(term.z_stat);
    fit.terms.push_back(std::move(term));
  }
  return fit;
}

}  // namespace dohperf::stats
