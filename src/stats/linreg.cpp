#include "stats/linreg.h"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace dohperf::stats {

const LinearTerm& LinearFit::term(std::string_view name) const {
  for (const auto& t : terms) {
    if (t.name == name) return t;
  }
  throw std::out_of_range("no term named " + std::string(name));
}

LinearFit fit_ols(const Matrix& x, std::span<const double> y,
                  std::span<const std::string> names) {
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  if (names.size() != k) throw std::invalid_argument("names size mismatch");
  if (y.size() != n) throw std::invalid_argument("y size mismatch");
  if (n <= k + 1) throw std::invalid_argument("underdetermined system");

  // Design with intercept column prepended.
  Matrix design(n, k + 1);
  for (std::size_t r = 0; r < n; ++r) {
    design.at(r, 0) = 1.0;
    for (std::size_t c = 0; c < k; ++c) design.at(r, c + 1) = x.at(r, c);
  }

  const Matrix xtx = design.gram();
  const std::vector<double> xty = design.transpose_times(y);
  const std::vector<double> beta = solve_spd(xtx, xty);

  // Residuals and fit quality.
  const std::vector<double> yhat = design * std::span<const double>(beta);
  double rss = 0.0, tss = 0.0, ybar = 0.0;
  for (const double v : y) ybar += v;
  ybar /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    rss += (y[i] - yhat[i]) * (y[i] - yhat[i]);
    tss += (y[i] - ybar) * (y[i] - ybar);
  }
  const double sigma2 = rss / static_cast<double>(n - (k + 1));
  const Matrix cov = invert_spd(xtx);

  LinearFit fit;
  fit.n = n;
  fit.sigma = std::sqrt(sigma2);
  fit.r_squared = tss > 0.0 ? 1.0 - rss / tss : 0.0;

  for (std::size_t j = 0; j <= k; ++j) {
    LinearTerm term;
    term.name = j == 0 ? "(intercept)" : names[j - 1];
    term.coef = beta[j];
    term.std_error = std::sqrt(std::max(0.0, sigma2 * cov.at(j, j)));
    term.t_stat = term.std_error > 0.0 ? term.coef / term.std_error : 0.0;
    term.p_value = two_sided_p(term.t_stat);

    if (j == 0) {
      term.scaled_coef = term.coef;
    } else {
      double lo = x.at(0, j - 1), hi = x.at(0, j - 1);
      for (std::size_t r = 1; r < n; ++r) {
        lo = std::min(lo, x.at(r, j - 1));
        hi = std::max(hi, x.at(r, j - 1));
      }
      term.scaled_coef = term.coef * (hi - lo);
    }
    fit.terms.push_back(std::move(term));
  }
  return fit;
}

}  // namespace dohperf::stats
