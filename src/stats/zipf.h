// Zipf-distributed rank sampler — the popularity model behind every
// cache-warmth computation (bench/ext_cache_hits, the shared PoP cache
// in resolver/shared_cache). A value type: each instance owns its
// cumulative table, so two workloads with the same catalog size keep
// independent state and sampling is safe across shards.
#pragma once

#include <cstddef>
#include <vector>

#include "netsim/random.h"

namespace dohperf::stats {

/// Samples ranks in [0, n) with P(rank = r) proportional to
/// 1 / (r + 1)^s. The cumulative table is built once at construction;
/// draws are an O(log n) inverse-CDF lookup.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::size_t n, double s = 1.0);

  /// Draws one rank, consuming exactly one uniform from `rng`.
  [[nodiscard]] std::size_t operator()(netsim::Rng& rng) const;

  /// Exact probability mass of `rank` (0 when out of range).
  [[nodiscard]] double probability(std::size_t rank) const;

  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  std::vector<double> cumulative_;  ///< Normalised CDF, ascending to 1.
  double exponent_ = 1.0;
  double total_ = 0.0;  ///< Unnormalised weight sum (for probability()).
};

}  // namespace dohperf::stats
