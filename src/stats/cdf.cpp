#include "stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/summary.h"

namespace dohperf::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::value_at(double q) const {
  // sorted_ is already ascending — don't pay quantile()'s copy.
  return quantile_sorted(sorted_, q);
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points + 1);
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(value_at(q), q);
  }
  return out;
}

}  // namespace dohperf::stats
