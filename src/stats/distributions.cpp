#include "stats/distributions.h"

#include <cmath>
#include <numbers>

namespace dohperf::stats {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double two_sided_p(double z) {
  return 2.0 * (1.0 - normal_cdf(std::abs(z)));
}

}  // namespace dohperf::stats
