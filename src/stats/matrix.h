// Small dense matrices for the regression solvers.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace dohperf::stats {

/// Row-major dense matrix of doubles. Sized for regression design
/// matrices (thousands of rows, tens of columns) — no BLAS needed.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists; all rows must be equal length.
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<double>> rows);

  /// Identity of size n.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> operator*(
      std::span<const double> v) const;

  /// X' * X (the Gram matrix), computed without materialising X'.
  [[nodiscard]] Matrix gram() const;

  /// X' * v.
  [[nodiscard]] std::vector<double> transpose_times(
      std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky; applies
/// a small ridge (jitter) automatically if A is near-singular. Throws
/// std::runtime_error if no factorisation succeeds.
[[nodiscard]] std::vector<double> solve_spd(const Matrix& a,
                                            std::span<const double> b);

/// Inverse of a symmetric positive-definite matrix (for covariance /
/// standard errors). Same ridge behaviour as solve_spd.
[[nodiscard]] Matrix invert_spd(const Matrix& a);

}  // namespace dohperf::stats
