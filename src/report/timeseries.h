// CSV and OpenMetrics-style rendering of a merged obs::MetricSeries.
#pragma once

#include <string>

#include "obs/series.h"
#include "report/csv.h"

namespace dohperf::report {

/// Flattens a series into one row per (track, window):
/// `metric,provider,country,window_start_ms,count,p50_ms,p90_ms,p99_ms`.
/// Counter tracks leave the quantile cells empty; latency tracks fill
/// them from the window's histogram. Rows come out in key order then
/// window order — deterministic for a deterministic series.
[[nodiscard]] CsvWriter timeseries_csv(const obs::MetricSeries& series);

/// OpenMetrics-style text exposition of the same data: counter tracks as
/// `dohperf_<metric>_total{provider="..",country="..",window="<n>"}`,
/// latency tracks as `_count` plus quantile samples with a `quantile`
/// label. Metric names are sanitized to [a-zA-Z0-9_:]; label values are
/// escaped per the exposition format. Ends with `# EOF`.
[[nodiscard]] std::string openmetrics_text(const obs::MetricSeries& series);

}  // namespace dohperf::report
