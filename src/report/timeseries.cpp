#include "report/timeseries.h"

#include <cstdio>

namespace dohperf::report {
namespace {

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", ms);
  return buf;
}

/// OpenMetrics metric names: [a-zA-Z0-9_:], everything else folded to _.
std::string sanitize_metric(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

/// OpenMetrics label values: escape backslash, double-quote, newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string labels(const obs::SeriesKey& key, std::int64_t window,
                   const char* extra = nullptr) {
  std::string out = "{provider=\"" + escape_label(key.provider) +
                    "\",country=\"" + escape_label(key.country) +
                    "\",window=\"" + std::to_string(window) + "\"";
  if (extra != nullptr) out += extra;
  out += "}";
  return out;
}

}  // namespace

CsvWriter timeseries_csv(const obs::MetricSeries& series) {
  CsvWriter csv({"metric", "provider", "country", "window_start_ms",
                 "count", "p50_ms", "p90_ms", "p99_ms"});
  // Tracks render densely from window 0 through their last live window:
  // a track whose first event lands in window k > 0 still emits k
  // explicit zero rows first, so downstream consumers can align tracks
  // by row position without re-deriving the window grid.
  for (const auto& [key, track] : series.counters()) {
    if (track.empty()) continue;
    for (std::int64_t window = 0; window <= track.rbegin()->first;
         ++window) {
      const auto it = track.find(window);
      csv.add_row({key.metric, key.provider, key.country,
                   format_ms(series.window_start_ms(window)),
                   std::to_string(it != track.end() ? it->second : 0), "",
                   "", ""});
    }
  }
  for (const auto& [key, track] : series.latencies()) {
    if (track.empty()) continue;
    for (std::int64_t window = 0; window <= track.rbegin()->first;
         ++window) {
      const auto it = track.find(window);
      if (it == track.end()) {
        // Empty quantile cells mark a zero window, same shape as the
        // counter rows.
        csv.add_row({key.metric, key.provider, key.country,
                     format_ms(series.window_start_ms(window)), "0", "",
                     "", ""});
        continue;
      }
      const obs::LatencyHistogram& hist = it->second;
      csv.add_row({key.metric, key.provider, key.country,
                   format_ms(series.window_start_ms(window)),
                   std::to_string(hist.count()),
                   format_ms(hist.quantile_ms(0.5)),
                   format_ms(hist.quantile_ms(0.9)),
                   format_ms(hist.quantile_ms(0.99))});
    }
  }
  return csv;
}

std::string openmetrics_text(const obs::MetricSeries& series) {
  std::string out;
  std::string last_header;
  const auto header = [&](const std::string& name, const char* type) {
    if (name == last_header) return;
    last_header = name;
    out += "# TYPE " + name + " " + type + "\n";
  };

  for (const auto& [key, track] : series.counters()) {
    const std::string name = "dohperf_" + sanitize_metric(key.metric);
    header(name + "_total", "counter");
    for (const auto& [window, count] : track) {
      out += name + "_total" + labels(key, window) + " " +
             std::to_string(count) + "\n";
    }
  }
  for (const auto& [key, track] : series.latencies()) {
    const std::string name = "dohperf_" + sanitize_metric(key.metric);
    header(name, "summary");
    for (const auto& [window, hist] : track) {
      out += name + "_count" + labels(key, window) + " " +
             std::to_string(hist.count()) + "\n";
      const std::pair<const char*, double> quantiles[] = {
          {",quantile=\"0.5\"", 0.5},
          {",quantile=\"0.9\"", 0.9},
          {",quantile=\"0.99\"", 0.99},
      };
      for (const auto& [label, q] : quantiles) {
        out += name + labels(key, window, label) + " " +
               format_ms(hist.quantile_ms(q)) + "\n";
      }
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace dohperf::report
