#include "report/metrics.h"

#include <cstdio>
#include <string>

namespace dohperf::report {
namespace {

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", ms);
  return buf;
}

std::string format_u64(std::uint64_t v) {
  return std::to_string(v);
}

}  // namespace

CsvWriter metrics_csv(const obs::Metrics& metrics) {
  CsvWriter csv({"section", "name", "value"});
  const obs::MetricCounters& c = metrics.counters;
  const std::pair<const char*, std::uint64_t> counters[] = {
      {"messages", c.messages},
      {"bytes_on_wire", c.bytes_on_wire},
      {"dns_queries", c.dns_queries},
      {"doh_queries", c.doh_queries},
      {"do53_queries", c.do53_queries},
      {"tcp_handshakes", c.tcp_handshakes},
      {"tls_handshakes", c.tls_handshakes},
      {"quic_handshakes", c.quic_handshakes},
      {"tunnels_established", c.tunnels_established},
      {"loss_retries", c.loss_retries},
      {"handshake_retries", c.handshake_retries},
      {"retry_timeouts", c.retry_timeouts},
      {"fallbacks", c.fallbacks},
      {"fallback_ok", c.fallback_ok},
      {"fallback_failed", c.fallback_failed},
      {"brownout_delays", c.brownout_delays},
      {"failures", c.failures},
      {"tls_resumptions", c.tls_resumptions},
      {"pool_cold", c.pool_cold},
      {"pool_reuses", c.pool_reuses},
      {"pool_resumptions", c.pool_resumptions},
      {"pool_evictions", c.pool_evictions},
      {"shared_cache_hits", c.shared_cache_hits},
      {"shared_cache_misses", c.shared_cache_misses},
      {"stub_cache_hits", c.stub_cache_hits},
  };
  for (const auto& [name, value] : counters) {
    csv.add_row({"counter", name, format_u64(value)});
  }

  for (const auto& [name, hist] : metrics.histograms()) {
    csv.add_row({"histogram", name + ".count", format_u64(hist.count())});
    csv.add_row(
        {"histogram", name + ".p50_ms", format_ms(hist.quantile_ms(0.5))});
    csv.add_row(
        {"histogram", name + ".p90_ms", format_ms(hist.quantile_ms(0.9))});
    csv.add_row(
        {"histogram", name + ".p99_ms", format_ms(hist.quantile_ms(0.99))});
    for (int i = 0; i < obs::LatencyHistogram::kBucketCount; ++i) {
      const std::uint64_t n = hist.bucket_count(i);
      if (n == 0) continue;
      csv.add_row({"histogram", name + ".bucket" + std::to_string(i),
                   format_u64(n)});
    }
  }
  return csv;
}

}  // namespace dohperf::report
