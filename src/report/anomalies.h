// Disk artifacts for the anomaly flight recorder: an index CSV plus one
// Perfetto trace JSON per retained anomaly, so `tools/trace_inspect`
// (and ui.perfetto.dev) open an anomalous flow exactly like a
// DOHPERF_TRACE capture.
#pragma once

#include <string>

#include "obs/flight_recorder.h"
#include "report/csv.h"

namespace dohperf::report {

/// One row per retained anomaly:
/// `slot,flow_index,session,flow,reasons,duration_ms,spans,trace_file`.
/// `reasons` is the "slow_flow|retry_give_up|..." form; `trace_file` is
/// the dump filename write_anomaly_dumps() uses for the record.
[[nodiscard]] CsvWriter anomaly_index_csv(const obs::FlightRecorder& recorder);

/// The dump filename of one record: "anomaly-<slot>-<flow_index>.json".
[[nodiscard]] std::string anomaly_trace_filename(const obs::AnomalyRecord& rec);

/// Writes `dir`/anomalies.csv plus one Perfetto trace JSON per retained
/// record, creating `dir` if missing. Returns the number of trace files
/// written.
std::size_t write_anomaly_dumps(const obs::FlightRecorder& recorder,
                                const std::string& dir);

}  // namespace dohperf::report
