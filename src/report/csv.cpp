#include "report/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dohperf::report {
namespace {

std::string escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void write_line(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    os << escape(cells[i]);
  }
  os << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  write_line(os, columns_);
  for (const auto& r : rows_) write_line(os, r);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  // Create missing parent directories (e.g. out/) instead of failing:
  // `ofstream` alone reports "cannot open" when the directory is absent.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best-effort
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << str();
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace dohperf::report
