#include "report/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dohperf::report {
namespace {

std::string escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void write_line(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    os << escape(cells[i]);
  }
  os << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  write_line(os, columns_);
  for (const auto& r : rows_) write_line(os, r);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  // Create missing parent directories (e.g. out/) instead of failing:
  // `ofstream` alone reports "cannot open" when the directory is absent.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best-effort
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << str();
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::optional<std::vector<std::vector<std::string>>> parse_csv(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;     // inside a quoted cell
  bool had_cell = false;   // current row has at least one (possibly empty) cell
  std::size_t i = 0;

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    had_cell = false;
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < text.size()) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          i += 2;
        } else {
          quoted = false;
          ++i;
          // Only a separator (or end of input) may follow a closing quote.
          if (i < text.size() && text[i] != ',' && text[i] != '\n' &&
              text[i] != '\r') {
            return std::nullopt;
          }
        }
      } else {
        cell.push_back(c);
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty()) return std::nullopt;  // quote mid-cell
        quoted = true;
        had_cell = true;
        ++i;
        break;
      case ',':
        end_cell();
        had_cell = true;  // a comma promises another cell
        ++i;
        break;
      case '\r':
        ++i;
        if (i < text.size() && text[i] == '\n') ++i;
        end_row();
        break;
      case '\n':
        ++i;
        end_row();
        break;
      default:
        cell.push_back(c);
        had_cell = true;
        ++i;
    }
  }
  if (quoted) return std::nullopt;  // unterminated quoted cell
  if (had_cell || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace dohperf::report
