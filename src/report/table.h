// ASCII table rendering for the bench harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dohperf::report {

/// A simple column-aligned table with a title and optional caption.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  Table& header(std::vector<std::string> cells);
  /// Appends a data row.
  Table& row(std::vector<std::string> cells);
  /// Sets an explanatory caption printed under the table.
  Table& caption(std::string text);

  /// Renders with box-drawing rules and per-column alignment (numbers
  /// right, text left).
  [[nodiscard]] std::string render() const;

  /// Renders to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `decimals` places.
[[nodiscard]] std::string fmt(double value, int decimals = 1);

/// Formats a ratio as "1.84x".
[[nodiscard]] std::string fmt_ratio(double value, int decimals = 2);

/// Formats a fraction as "26.3%".
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace dohperf::report
