#include "report/slo.h"

#include <cstdio>

namespace dohperf::report {
namespace {

std::string format_ratio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string key_labels(const obs::SloKey& key) {
  return "{provider=\"" + escape_label(key.provider) + "\",country=\"" +
         escape_label(key.country) + "\"}";
}

std::vector<std::string> cell_row(const obs::SloKey& key,
                                  const std::string& window_cell,
                                  double objective,
                                  const obs::SloCell& cell) {
  std::vector<std::string> row = {key.provider, key.country, window_cell,
                                  format_ratio(objective),
                                  std::to_string(cell.total())};
  for (int i = 0; i < obs::kOutcomeCount; ++i) {
    row.push_back(std::to_string(cell.outcomes[i]));
  }
  row.push_back(std::to_string(cell.slow));
  const std::uint64_t total = cell.total();
  row.push_back(format_ratio(
      total == 0 ? 1.0
                 : static_cast<double>(cell.good()) /
                       static_cast<double>(total)));
  return row;
}

}  // namespace

CsvWriter availability_csv(const obs::SloTracker& tracker) {
  std::vector<std::string> columns = {"provider", "country",
                                      "window_start_ms", "objective",
                                      "total"};
  for (int i = 0; i < obs::kOutcomeCount; ++i) {
    columns.emplace_back(obs::to_string(static_cast<obs::Outcome>(i)));
  }
  columns.emplace_back("slow");
  columns.emplace_back("availability");
  CsvWriter csv(std::move(columns));

  const double objective = tracker.config().availability_objective;
  for (const auto& [key, windows] : tracker.cells()) {
    obs::SloCell total;
    for (const auto& [window, cell] : windows) {
      csv.add_row(cell_row(key, std::to_string(window * tracker.window_ms()),
                           objective, cell));
      total.merge(cell);
    }
    // Whole-campaign roll-up: empty window cell.
    csv.add_row(cell_row(key, std::string(), objective, total));
  }
  return csv;
}

CsvWriter slo_alerts_csv(std::span<const obs::SloAlert> alerts) {
  CsvWriter csv({"provider", "severity", "window_start_ms", "burn_short",
                 "burn_long"});
  for (const obs::SloAlert& alert : alerts) {
    csv.add_row({alert.provider, alert.severity,
                 std::to_string(alert.window_start_ms),
                 format_ratio(alert.burn_short),
                 format_ratio(alert.burn_long)});
  }
  return csv;
}

std::string slo_openmetrics_text(const obs::SloTracker& tracker) {
  std::string out;
  const auto budgets = tracker.budgets();
  if (budgets.empty()) return out;
  out += "# TYPE dohperf_availability gauge\n";
  for (const auto& [key, budget] : budgets) {
    out += "dohperf_availability" + key_labels(key) + " " +
           format_ratio(budget.availability) + "\n";
  }
  out += "# TYPE dohperf_error_budget_consumed gauge\n";
  for (const auto& [key, budget] : budgets) {
    out += "dohperf_error_budget_consumed" + key_labels(key) + " " +
           format_ratio(budget.error_budget_consumed) + "\n";
  }
  return out;
}

}  // namespace dohperf::report
