#include "report/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dohperf::report {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != 'x' && c != 'e') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::caption(std::string text) {
  caption_ = std::move(text);
  return *this;
}

std::string Table::render() const {
  std::size_t n_cols = header_.size();
  for (const auto& r : rows_) n_cols = std::max(n_cols, r.size());

  std::vector<std::size_t> widths(n_cols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  // Decide alignment per column: right if every data cell is numeric.
  std::vector<bool> right(n_cols, true);
  for (std::size_t c = 0; c < n_cols; ++c) {
    for (const auto& r : rows_) {
      if (c < r.size() && !r[c].empty() && !looks_numeric(r[c])) {
        right[c] = false;
        break;
      }
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < n_cols; ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < n_cols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const std::size_t pad = widths[c] - cell.size();
      if (right[c]) {
        os << ' ' << std::string(pad, ' ') << cell << " |";
      } else {
        os << ' ' << cell << std::string(pad, ' ') << " |";
      }
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  if (!caption_.empty()) os << caption_ << '\n';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_ratio(double value, int decimals) {
  return fmt(value, decimals) + "x";
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace dohperf::report
