// CSV output for figure data series.
#pragma once

#include <string>
#include <vector>

namespace dohperf::report {

/// Accumulates rows and writes RFC 4180-style CSV (quoting cells that
/// contain commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string str() const;

  /// Writes to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dohperf::report
