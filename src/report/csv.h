// CSV output for figure data series.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dohperf::report {

/// Accumulates rows and writes RFC 4180-style CSV (quoting cells that
/// contain commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string str() const;

  /// Writes to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses RFC 4180-style CSV (the dialect CsvWriter emits, including
/// quoted cells with embedded commas, doubled quotes, and newlines)
/// into rows of cells, header row included. Returns std::nullopt on a
/// malformed document: an unterminated quoted cell, or bytes between a
/// closing quote and the next separator. Every CsvWriter output
/// round-trips: parse_csv(w.str()) reproduces the columns and rows.
[[nodiscard]] std::optional<std::vector<std::vector<std::string>>> parse_csv(
    std::string_view text);

}  // namespace dohperf::report
