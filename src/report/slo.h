// SLO report surfaces: availability table CSV, alert-event CSV, and
// OpenMetrics gauges, all rendered from the merged SloTracker so every
// number is derived post-merge from shard-invariant integer counts.
#pragma once

#include <span>
#include <string>

#include "obs/slo.h"
#include "report/csv.h"

namespace dohperf::report {

/// The per-(provider, country) availability table ("dohperf-availability"
/// column contract; bench_schema_check validates the JSON twin):
///   provider,country,window_start_ms,objective,total,ok,fallback_ok,
///   brownout_degraded,timeout_giveup,fallback_failed,provider_outage,
///   blackout,unreachable,slow,availability
/// One row per live window per key, then one whole-campaign total row per
/// key with an empty window_start_ms cell. Aggregate keys carry an empty
/// country cell.
[[nodiscard]] CsvWriter availability_csv(const obs::SloTracker& tracker);

/// The burn-rate alert events:
///   provider,severity,window_start_ms,burn_short,burn_long
[[nodiscard]] CsvWriter slo_alerts_csv(std::span<const obs::SloAlert> alerts);

/// OpenMetrics gauge block (no "# EOF"; the caller owns document
/// framing): whole-campaign availability and error-budget consumption
/// per key.
[[nodiscard]] std::string slo_openmetrics_text(const obs::SloTracker& tracker);

}  // namespace dohperf::report
