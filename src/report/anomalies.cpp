#include "report/anomalies.h"

#include <cstdio>
#include <filesystem>

#include "obs/trace_export.h"

namespace dohperf::report {
namespace {

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", ms);
  return buf;
}

}  // namespace

std::string anomaly_trace_filename(const obs::AnomalyRecord& rec) {
  return "anomaly-" + std::to_string(rec.slot) + "-" +
         std::to_string(rec.flow_index) + ".json";
}

CsvWriter anomaly_index_csv(const obs::FlightRecorder& recorder) {
  CsvWriter csv({"slot", "flow_index", "session", "flow", "reasons",
                 "duration_ms", "spans", "trace_file"});
  for (const auto& [key, rec] : recorder.retained()) {
    csv.add_row({std::to_string(rec.slot), std::to_string(rec.flow_index),
                 rec.session, rec.flow, obs::anomaly_reasons(rec.reasons),
                 format_ms(rec.duration_ms),
                 std::to_string(rec.spans.size()),
                 anomaly_trace_filename(rec)});
  }
  return csv;
}

std::size_t write_anomaly_dumps(const obs::FlightRecorder& recorder,
                                const std::string& dir) {
  const std::filesystem::path base(dir);
  anomaly_index_csv(recorder).write_file((base / "anomalies.csv").string());
  std::size_t written = 0;
  for (const auto& [key, rec] : recorder.retained()) {
    obs::write_text_file((base / anomaly_trace_filename(rec)).string(),
                         obs::perfetto_trace_json(rec.spans));
    ++written;
  }
  return written;
}

}  // namespace dohperf::report
