// Attribution report surfaces: the per-(provider, country, transport)
// phase-decomposition CSV, its loader, and the differential waterfall
// that accounts a B-vs-A end-to-end latency delta phase by phase.
//
// Exactness contract: phase microseconds partition each flow's total by
// construction (obs/attribution.h), and the aggregation is integer-only,
// so for any two aggregates A and B the per-phase mean deltas sum to the
// end-to-end mean delta *as rationals* — verified here in 128-bit
// integer arithmetic over the common denominator flows_a * flows_b, not
// within a floating-point epsilon.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/attribution.h"
#include "report/csv.h"

namespace dohperf::report {

/// One loaded (or aggregated) attribution cell: exact integer counts.
struct AttributionCell {
  std::uint64_t flows = 0;
  std::uint64_t total_us = 0;
  std::array<std::uint64_t, obs::kPhaseCount> phase_us{};

  void merge(const AttributionCell& other);
  /// sum(phase_us) == total_us — the per-flow invariant survives
  /// integer aggregation.
  [[nodiscard]] bool consistent() const;
};

/// A parsed attribution artifact: cells keyed like the ledger.
using AttributionTable = std::map<obs::AttributionKey, AttributionCell>;

/// The attribution CSV ("dohperf-attribution" column contract):
///   provider,country,transport,phase,flows,us,p50_ms,p90_ms,p99_ms
/// Per (provider, country, transport) cell: one row per phase in
/// canonical order (zero phases included, so every cell is 12+1 rows)
/// and one "total" row. Phase quantiles are over the flows where the
/// phase occurred; the total row's are over all flows.
[[nodiscard]] CsvWriter attribution_csv(const obs::AttributionLedger& ledger);

/// Parses an attribution CSV (leading '#' provenance lines skipped).
/// Returns std::nullopt on malformed documents: wrong columns, unknown
/// phase names, non-integer counts, or a cell whose phase rows do not
/// sum to its total row.
[[nodiscard]] std::optional<AttributionTable> load_attribution_csv(
    std::string_view text);

/// Sums the table's cells, optionally restricted to one transport
/// (empty matches all). Integer-only, so order never matters.
[[nodiscard]] AttributionCell aggregate(const AttributionTable& table,
                                        std::string_view transport = {});

/// One phase's contribution to the A->B latency delta (per-flow means).
struct WaterfallStep {
  obs::Phase phase = obs::Phase::kTransfer;
  double a_ms = 0.0;      ///< Mean per-flow phase time in A.
  double b_ms = 0.0;      ///< Mean per-flow phase time in B.
  double delta_ms = 0.0;  ///< b_ms - a_ms.
};

/// The differential waterfall between two aggregates.
struct Waterfall {
  AttributionCell a;
  AttributionCell b;
  std::array<WaterfallStep, obs::kPhaseCount> steps;
  double a_total_ms = 0.0;
  double b_total_ms = 0.0;
  double delta_total_ms = 0.0;
  /// The 128-bit rational identity
  ///   sum_p (phase_b[p]*flows_a - phase_a[p]*flows_b)
  ///     == total_b*flows_a - total_a*flows_b
  /// held exactly. True for any internally consistent pair of cells.
  bool exact = false;
};

/// Builds the waterfall; cells with zero flows contribute zero means.
[[nodiscard]] Waterfall make_waterfall(const AttributionCell& a,
                                       const AttributionCell& b);

/// Fixed-width per-phase delta table (for terminals and logs).
[[nodiscard]] std::string waterfall_text(const Waterfall& w,
                                         std::string_view label_a,
                                         std::string_view label_b);

/// Standalone inline-SVG waterfall chart: one bar per phase delta,
/// positive (slower in B) to the right, plus the end-to-end delta bar.
[[nodiscard]] std::string waterfall_svg(const Waterfall& w,
                                        std::string_view label_a,
                                        std::string_view label_b);

/// OpenMetrics gauge block (no "# EOF"; the caller owns framing):
/// dohperf_attribution_us_total{provider,country,transport,phase} plus
/// dohperf_attribution_flows_total per cell.
[[nodiscard]] std::string attribution_openmetrics_text(
    const obs::AttributionLedger& ledger);

}  // namespace dohperf::report
