#include "report/attribution.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace dohperf::report {
namespace {

std::string format_ms(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool parse_u64(const std::string& cell, std::uint64_t& out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(cell.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

/// Strips leading '#'-comment lines (spec provenance stamps).
std::string_view skip_comments(std::string_view text) {
  while (!text.empty() && text.front() == '#') {
    const std::size_t nl = text.find('\n');
    if (nl == std::string_view::npos) return {};
    text.remove_prefix(nl + 1);
  }
  return text;
}

double mean_ms(std::uint64_t us, std::uint64_t flows) {
  return flows == 0 ? 0.0
                    : static_cast<double>(us) /
                          static_cast<double>(flows) / 1000.0;
}

}  // namespace

void AttributionCell::merge(const AttributionCell& other) {
  flows += other.flows;
  total_us += other.total_us;
  for (int p = 0; p < obs::kPhaseCount; ++p) phase_us[p] += other.phase_us[p];
}

bool AttributionCell::consistent() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t us : phase_us) sum += us;
  return sum == total_us;
}

CsvWriter attribution_csv(const obs::AttributionLedger& ledger) {
  CsvWriter csv({"provider", "country", "transport", "phase", "flows", "us",
                 "p50_ms", "p90_ms", "p99_ms"});
  for (const auto& [key, entry] : ledger.entries()) {
    for (const obs::Phase phase : obs::kPhases) {
      const obs::PhaseAggregate& agg =
          entry.phases[static_cast<std::size_t>(phase)];
      csv.add_row({key.provider, key.country, key.transport,
                   std::string(obs::phase_name(phase)),
                   std::to_string(entry.flows), std::to_string(agg.us),
                   format_ms(agg.sketch.quantile_ms(0.5)),
                   format_ms(agg.sketch.quantile_ms(0.9)),
                   format_ms(agg.sketch.quantile_ms(0.99))});
    }
    csv.add_row({key.provider, key.country, key.transport, "total",
                 std::to_string(entry.flows), std::to_string(entry.total_us),
                 format_ms(entry.total_sketch.quantile_ms(0.5)),
                 format_ms(entry.total_sketch.quantile_ms(0.9)),
                 format_ms(entry.total_sketch.quantile_ms(0.99))});
  }
  return csv;
}

std::optional<AttributionTable> load_attribution_csv(std::string_view text) {
  const auto rows = parse_csv(skip_comments(text));
  if (!rows || rows->empty()) return std::nullopt;
  const std::vector<std::string>& header = rows->front();
  if (header.size() < 6 || header[0] != "provider" ||
      header[1] != "country" || header[2] != "transport" ||
      header[3] != "phase" || header[4] != "flows" || header[5] != "us") {
    return std::nullopt;
  }

  AttributionTable table;
  // Totals read from the "total" rows, checked against the phase sums.
  std::map<obs::AttributionKey, std::uint64_t> declared_totals;
  for (std::size_t r = 1; r < rows->size(); ++r) {
    const std::vector<std::string>& row = (*rows)[r];
    if (row.size() < 6) return std::nullopt;
    obs::AttributionKey key{row[0], row[1], row[2]};
    std::uint64_t flows = 0;
    std::uint64_t us = 0;
    if (!parse_u64(row[4], flows) || !parse_u64(row[5], us)) {
      return std::nullopt;
    }
    AttributionCell& cell = table[key];
    cell.flows = flows;
    if (row[3] == "total") {
      cell.total_us = us;
      declared_totals[key] = us;
      continue;
    }
    obs::Phase phase;
    if (!obs::parse_phase(row[3], phase)) return std::nullopt;
    cell.phase_us[static_cast<std::size_t>(phase)] = us;
  }

  for (const auto& [key, cell] : table) {
    const auto total = declared_totals.find(key);
    if (total == declared_totals.end()) return std::nullopt;
    if (!cell.consistent()) return std::nullopt;
  }
  return table;
}

AttributionCell aggregate(const AttributionTable& table,
                          std::string_view transport) {
  AttributionCell out;
  for (const auto& [key, cell] : table) {
    if (!transport.empty() && key.transport != transport) continue;
    out.merge(cell);
  }
  return out;
}

Waterfall make_waterfall(const AttributionCell& a, const AttributionCell& b) {
  Waterfall w;
  w.a = a;
  w.b = b;
  w.a_total_ms = mean_ms(a.total_us, a.flows);
  w.b_total_ms = mean_ms(b.total_us, b.flows);
  w.delta_total_ms = w.b_total_ms - w.a_total_ms;

  // Exactness over the common denominator flows_a * flows_b: the phase
  // numerators must sum to the end-to-end numerator with no remainder.
  using int128 = __int128;
  const auto na = static_cast<int128>(a.flows);
  const auto nb = static_cast<int128>(b.flows);
  int128 numer_sum = 0;
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    WaterfallStep& step = w.steps[static_cast<std::size_t>(p)];
    step.phase = obs::kPhases[static_cast<std::size_t>(p)];
    step.a_ms = mean_ms(a.phase_us[p], a.flows);
    step.b_ms = mean_ms(b.phase_us[p], b.flows);
    step.delta_ms = step.b_ms - step.a_ms;
    numer_sum += static_cast<int128>(b.phase_us[p]) * na -
                 static_cast<int128>(a.phase_us[p]) * nb;
  }
  const int128 total_numer = static_cast<int128>(b.total_us) * na -
                             static_cast<int128>(a.total_us) * nb;
  w.exact = numer_sum == total_numer;
  return w;
}

std::string waterfall_text(const Waterfall& w, std::string_view label_a,
                           std::string_view label_b) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-18s %12.*s %12.*s %12s\n", "phase",
                static_cast<int>(label_a.size()), label_a.data(),
                static_cast<int>(label_b.size()), label_b.data(),
                "delta_ms");
  out += line;
  for (const WaterfallStep& step : w.steps) {
    if (step.a_ms == 0.0 && step.b_ms == 0.0) continue;
    std::snprintf(line, sizeof line, "%-18s %12.3f %12.3f %+12.3f\n",
                  std::string(obs::phase_name(step.phase)).c_str(),
                  step.a_ms, step.b_ms, step.delta_ms);
    out += line;
  }
  std::snprintf(line, sizeof line, "%-18s %12.3f %12.3f %+12.3f\n", "total",
                w.a_total_ms, w.b_total_ms, w.delta_total_ms);
  out += line;
  std::snprintf(line, sizeof line, "exact: %s\n", w.exact ? "yes" : "NO");
  out += line;
  return out;
}

std::string waterfall_svg(const Waterfall& w, std::string_view label_a,
                          std::string_view label_b) {
  // Bars for the phases that moved, plus the end-to-end delta at the
  // bottom. Scale: widest |delta| spans half the chart width.
  struct Bar {
    std::string name;
    double delta_ms = 0.0;
  };
  std::vector<Bar> bars;
  double max_abs = 0.0;
  for (const WaterfallStep& step : w.steps) {
    if (step.a_ms == 0.0 && step.b_ms == 0.0) continue;
    bars.push_back({std::string(obs::phase_name(step.phase)),
                    step.delta_ms});
    if (std::abs(step.delta_ms) > max_abs) max_abs = std::abs(step.delta_ms);
  }
  bars.push_back({"total", w.delta_total_ms});
  if (std::abs(w.delta_total_ms) > max_abs) {
    max_abs = std::abs(w.delta_total_ms);
  }
  if (max_abs == 0.0) max_abs = 1.0;

  constexpr int kWidth = 860;
  constexpr int kLeft = 170;
  constexpr int kRowH = 26;
  const int mid = kLeft + (kWidth - kLeft - 20) / 2;
  const double scale = static_cast<double>(kWidth - kLeft - 40) / 2.0 /
                       max_abs;
  const int height = 60 + static_cast<int>(bars.size()) * kRowH;

  std::string svg;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
                "height=\"%d\" font-family=\"sans-serif\" "
                "font-size=\"12\">\n",
                kWidth, height);
  svg += buf;
  std::snprintf(buf, sizeof buf,
                "<text x=\"%d\" y=\"18\">Latency delta waterfall: %.*s "
                "&#8594; %.*s (negative = faster)</text>\n",
                kLeft, static_cast<int>(label_a.size()), label_a.data(),
                static_cast<int>(label_b.size()), label_b.data());
  svg += buf;
  std::snprintf(buf, sizeof buf,
                "<line x1=\"%d\" y1=\"30\" x2=\"%d\" y2=\"%d\" "
                "stroke=\"#888\"/>\n",
                mid, mid, height - 10);
  svg += buf;
  int y = 40;
  for (const Bar& bar : bars) {
    const bool total = bar.name == "total";
    const double width_px = std::abs(bar.delta_ms) * scale;
    const int x = bar.delta_ms < 0
                      ? mid - static_cast<int>(width_px)
                      : mid;
    const char* color = total ? "#444" : bar.delta_ms < 0 ? "#2a7" : "#c44";
    std::snprintf(buf, sizeof buf,
                  "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n",
                  kLeft - 8, y + 14, bar.name.c_str());
    svg += buf;
    std::snprintf(buf, sizeof buf,
                  "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
                  "fill=\"%s\"/>\n",
                  x, y + 3, std::max(1, static_cast<int>(width_px)),
                  kRowH - 10, color);
    svg += buf;
    std::snprintf(buf, sizeof buf,
                  "<text x=\"%d\" y=\"%d\">%+.3f ms</text>\n",
                  (bar.delta_ms < 0 ? mid : mid + static_cast<int>(width_px)) +
                      6,
                  y + 14, bar.delta_ms);
    svg += buf;
    y += kRowH;
  }
  svg += "</svg>\n";
  return svg;
}

std::string attribution_openmetrics_text(
    const obs::AttributionLedger& ledger) {
  std::string out;
  if (ledger.entries().empty()) return out;
  out += "# TYPE dohperf_attribution_flows_total gauge\n";
  for (const auto& [key, entry] : ledger.entries()) {
    out += "dohperf_attribution_flows_total{provider=\"" +
           escape_label(key.provider) + "\",country=\"" +
           escape_label(key.country) + "\",transport=\"" +
           escape_label(key.transport) + "\"} " +
           std::to_string(entry.flows) + "\n";
  }
  out += "# TYPE dohperf_attribution_us_total gauge\n";
  for (const auto& [key, entry] : ledger.entries()) {
    for (const obs::Phase phase : obs::kPhases) {
      const obs::PhaseAggregate& agg =
          entry.phases[static_cast<std::size_t>(phase)];
      if (agg.us == 0) continue;
      out += "dohperf_attribution_us_total{provider=\"" +
             escape_label(key.provider) + "\",country=\"" +
             escape_label(key.country) + "\",transport=\"" +
             escape_label(key.transport) + "\",phase=\"" +
             std::string(obs::phase_name(phase)) + "\"} " +
             std::to_string(agg.us) + "\n";
    }
  }
  return out;
}

}  // namespace dohperf::report
