// CSV rendering of a merged obs::Metrics registry.
#pragma once

#include "obs/metrics.h"
#include "report/csv.h"

namespace dohperf::report {

/// Flattens a metrics registry into a three-column CSV
/// (`section,name,value`): one `counter` row per wire/query/handshake
/// counter, and per histogram a `histogram` row for the sample count, the
/// p50/p90/p99 bucket edges, and every non-empty bucket
/// (`<name>.bucket<i>`). Values are integers except the quantile edges.
[[nodiscard]] CsvWriter metrics_csv(const obs::Metrics& metrics);

}  // namespace dohperf::report
