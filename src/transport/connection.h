// The stackable connection hierarchy.
//
// A Connection moves whole records between its two endpoints; layers
// (TCP, TLS, QUIC, the proxy tunnel) stack by delegating delivery to the
// layer beneath while contributing their own per-record framing bytes:
//
//   send(payload)            adds the whole stack's framing, then
//   send_framed(wire_bytes)  moves the finished record via the layer
//                            below (Path at the bottom).
//
// Flow code therefore states *what* travels (a serialized HTTP message,
// a DNS message's wire size) and the stack computes what that costs on
// the wire — no caller sums kRecordOverheadBytes by hand.
#pragma once

#include <string>
#include <string_view>

#include "netsim/path.h"
#include "transport/http.h"

namespace dohperf::transport {

/// IP + UDP header bytes charged per datagram on unframed paths.
inline constexpr std::size_t kUdpOverheadBytes = 28;

/// Two-octet length prefix per RFC 7858 DNS message framing.
inline constexpr std::size_t kLengthPrefixBytes = 2;

class Connection {
 public:
  Connection() = default;
  Connection(const Connection&) = default;
  Connection(Connection&&) = default;
  Connection& operator=(const Connection&) = default;
  Connection& operator=(Connection&&) = default;
  virtual ~Connection() = default;

  [[nodiscard]] virtual netsim::NetCtx& net() const = 0;

  /// Short layer tag ("tcp", "tls", "tunnel", ...) naming the spans this
  /// layer opens and, through them, labelling the hops it causes.
  [[nodiscard]] virtual std::string_view layer_name() const {
    return "conn";
  }

  /// Per-record framing bytes this layer alone adds.
  [[nodiscard]] virtual std::size_t layer_overhead() const { return 0; }

  /// The single routed Path this connection ultimately rides on, or
  /// nullptr for composites (the proxy Tunnel spans two paths, each of
  /// which gates its own establishment). Fault-episode handshake gates
  /// use this to locate the endpoints whose loss/blackout state applies.
  [[nodiscard]] virtual const netsim::Path* underlying_path() const {
    return nullptr;
  }

  /// Per-record framing added by this layer and everything below it.
  [[nodiscard]] virtual std::size_t stack_overhead() const {
    return layer_overhead();
  }

  /// Moves one fully framed record client -> server; `wire_bytes` already
  /// includes all framing. Handshakes use these directly because their
  /// message sizes are quoted as on-the-wire datagrams.
  virtual netsim::Task<void> send_framed(std::size_t wire_bytes) const = 0;

  /// Moves one fully framed record server -> client.
  virtual netsim::Task<void> recv_framed(std::size_t wire_bytes) const = 0;

  /// Sends an application payload, adding the stack's framing. With a
  /// span context attached, the record travels inside a
  /// "<layer_name>.send" span (skipped entirely when tracing is off so
  /// the hot path stays a plain delegation).
  netsim::Task<void> send(std::size_t payload_bytes) const {
    const std::size_t wire = payload_bytes + stack_overhead();
    if (net().spans == nullptr) return send_framed(wire);
    return send_spanned(wire);
  }

  /// Receives an application payload, adding the stack's framing.
  netsim::Task<void> recv(std::size_t payload_bytes) const {
    const std::size_t wire = payload_bytes + stack_overhead();
    if (net().spans == nullptr) return recv_framed(wire);
    return recv_spanned(wire);
  }

  /// Message-typed conveniences: wire size from the serialized message.
  netsim::Task<void> send(const HttpRequest& msg) const {
    return send(msg.wire_size());
  }
  netsim::Task<void> send(const HttpResponse& msg) const {
    return send(msg.wire_size());
  }
  netsim::Task<void> recv(const HttpRequest& msg) const {
    return recv(msg.wire_size());
  }
  netsim::Task<void> recv(const HttpResponse& msg) const {
    return recv(msg.wire_size());
  }

 private:
  // Traced variants: same awaits, wrapped in a named span.
  netsim::Task<void> send_spanned(std::size_t wire_bytes) const {
    const obs::ScopedSpan span =
        net().span(std::string(layer_name()) + ".send");
    co_await send_framed(wire_bytes);
  }
  netsim::Task<void> recv_spanned(std::size_t wire_bytes) const {
    const obs::ScopedSpan span =
        net().span(std::string(layer_name()) + ".recv");
    co_await recv_framed(wire_bytes);
  }
};

/// Layer 0: a connection carried directly on a routed Path.
class PathConnection : public Connection {
 public:
  explicit PathConnection(netsim::Path path) : path_(std::move(path)) {}

  [[nodiscard]] netsim::NetCtx& net() const override { return path_.net(); }
  [[nodiscard]] std::string_view layer_name() const override {
    return "path";
  }
  netsim::Task<void> send_framed(std::size_t wire_bytes) const override {
    return path_.send(wire_bytes);
  }
  netsim::Task<void> recv_framed(std::size_t wire_bytes) const override {
    return path_.recv(wire_bytes);
  }
  [[nodiscard]] const netsim::Path* underlying_path() const override {
    return &path_;
  }

  [[nodiscard]] const netsim::Path& path() const { return path_; }

 private:
  netsim::Path path_;
};

/// A protocol layer stacked on a lower connection: contributes its own
/// record overhead and delegates delivery downward. Non-owning — the
/// lower connection must outlive this layer.
class LayeredConnection : public Connection {
 public:
  explicit LayeredConnection(const Connection& lower) : lower_(&lower) {}

  [[nodiscard]] netsim::NetCtx& net() const override {
    return lower_->net();
  }
  [[nodiscard]] std::size_t stack_overhead() const override {
    return layer_overhead() + lower_->stack_overhead();
  }
  netsim::Task<void> send_framed(std::size_t wire_bytes) const override {
    return lower_->send_framed(wire_bytes);
  }
  netsim::Task<void> recv_framed(std::size_t wire_bytes) const override {
    return lower_->recv_framed(wire_bytes);
  }
  [[nodiscard]] const netsim::Path* underlying_path() const override {
    return lower_->underlying_path();
  }

  [[nodiscard]] const Connection& lower() const { return *lower_; }

 private:
  const Connection* lower_;
};

/// RFC 7858-style message framing: each DNS message is preceded by a
/// two-octet length field (DoT rides this over a TlsSession).
class LengthPrefixedChannel : public LayeredConnection {
 public:
  using LayeredConnection::LayeredConnection;
  [[nodiscard]] std::string_view layer_name() const override {
    return "dns-framing";
  }
  [[nodiscard]] std::size_t layer_overhead() const override {
    return kLengthPrefixBytes;
  }
};

}  // namespace dohperf::transport
