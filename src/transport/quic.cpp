#include "transport/quic.h"

namespace dohperf::transport {

netsim::Task<QuicConnection> quic_connect(netsim::NetCtx& net,
                                          const netsim::Site& client,
                                          const netsim::Site& server) {
  const netsim::SimTime start = net.sim.now();
  co_await net.hop(client, server, kQuicClientInitialBytes);
  co_await net.hop(server, client, kQuicServerHandshakeBytes);
  QuicConnection conn;
  conn.client = client;
  conn.server = server;
  conn.zero_rtt = false;
  conn.handshake_time = net.sim.now() - start;
  conn.established_at = net.sim.now();
  co_return conn;
}

netsim::Task<QuicConnection> quic_resume(netsim::NetCtx& net,
                                         const netsim::Site& client,
                                         const netsim::Site& server) {
  // 0-RTT: nothing travels ahead of the first request; the connection is
  // usable immediately (the ticket was cached from a prior session).
  (void)net;
  QuicConnection conn;
  conn.client = client;
  conn.server = server;
  conn.zero_rtt = true;
  conn.handshake_time = netsim::Duration::zero();
  conn.established_at = net.sim.now();
  co_return conn;
}

}  // namespace dohperf::transport
