#include "transport/quic.h"

namespace dohperf::transport {

netsim::Task<QuicConnection> quic_connect(netsim::NetCtx& net,
                                          const netsim::Site& client,
                                          const netsim::Site& server) {
  QuicConnection conn{netsim::Path(net, client, server)};
  const obs::ScopedSpan span = net.span("quic_handshake");
  const obs::ScopedPhase attr = net.phase(obs::Phase::kQuicHandshake);
  if (net.metrics != nullptr) ++net.metrics->counters.quic_handshakes;
  const netsim::SimTime start = net.sim.now();
  const netsim::RetryOutcome initial =
      co_await net.handshake_gate(client, server, kInitialRetryPolicy);
  if (!initial.delivered) {
    conn.established = false;
    conn.handshake_time = net.sim.now() - start;
    conn.established_at = net.sim.now();
    co_return conn;
  }
  // Handshake datagram sizes are quoted on-the-wire; no added framing.
  co_await conn.send_framed(kQuicClientInitialBytes);
  co_await conn.recv_framed(kQuicServerHandshakeBytes);
  conn.zero_rtt = false;
  conn.handshake_time = net.sim.now() - start;
  conn.established_at = net.sim.now();
  co_return conn;
}

netsim::Task<QuicConnection> quic_resume(netsim::NetCtx& net,
                                         const netsim::Site& client,
                                         const netsim::Site& server) {
  // 0-RTT: nothing travels ahead of the first request; the connection is
  // usable immediately (the ticket was cached from a prior session).
  QuicConnection conn{netsim::Path(net, client, server)};
  conn.zero_rtt = true;
  conn.handshake_time = netsim::Duration::zero();
  conn.established_at = net.sim.now();
  co_return conn;
}

}  // namespace dohperf::transport
