// Base64url (RFC 4648 section 5) without padding, as used by DoH GET
// requests (RFC 8484: ?dns=<base64url(message)>).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dohperf::transport {

/// Encodes bytes to unpadded base64url.
[[nodiscard]] std::string base64url_encode(std::span<const std::uint8_t> in);

/// Decodes unpadded base64url; nullopt on invalid characters or length.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base64url_decode(
    std::string_view in);

}  // namespace dohperf::transport
