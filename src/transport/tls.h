// Simulated TLS session establishment.
//
// TLS 1.3 completes in one round trip (ClientHello -> ServerHello..
// Finished; RFC 8446), TLS 1.2 in two. The paper's headline numbers
// assume 1.3, which all four studied DoH resolvers prefer; 1.2 is kept
// for the ablation bench (paper Section 7, Limitations).
#pragma once

#include "netsim/netctx.h"
#include "transport/tcp.h"

namespace dohperf::transport {

enum class TlsVersion {
  kTls12,
  kTls13,
};

[[nodiscard]] std::string_view to_string(TlsVersion v);

/// Handshake message sizes (octets).
inline constexpr std::size_t kClientHelloBytes = 320;
inline constexpr std::size_t kServerHelloBytes = 3200;  // incl. certificate
inline constexpr std::size_t kClientFinishedBytes = 80;
inline constexpr std::size_t kRecordOverheadBytes = 29;  // per app record

/// An established TLS session over a TCP connection.
struct TlsSession {
  TlsVersion version = TlsVersion::kTls13;
  netsim::Duration handshake_time{};
  netsim::SimTime established_at{};
};

/// Runs the handshake on an established connection. For 1.3 the client
/// can transmit application data together with its Finished, so the flow
/// completes one RTT after ClientHello; 1.2 requires a second round trip.
[[nodiscard]] netsim::Task<TlsSession> tls_handshake(
    netsim::NetCtx& net, const TcpConnection& conn,
    TlsVersion version = TlsVersion::kTls13);

}  // namespace dohperf::transport
