// Simulated TLS session establishment.
//
// TLS 1.3 completes in one round trip (ClientHello -> ServerHello..
// Finished; RFC 8446), TLS 1.2 in two. The paper's headline numbers
// assume 1.3, which all four studied DoH resolvers prefer; 1.2 is kept
// for the ablation bench (paper Section 7, Limitations).
#pragma once

#include <chrono>

#include "transport/connection.h"

namespace dohperf::transport {

enum class TlsVersion {
  kTls12,
  kTls13,
};

[[nodiscard]] std::string_view to_string(TlsVersion v);

/// Handshake message sizes (octets).
inline constexpr std::size_t kClientHelloBytes = 320;
inline constexpr std::size_t kServerHelloBytes = 3200;  // incl. certificate
inline constexpr std::size_t kClientFinishedBytes = 80;
inline constexpr std::size_t kServerFinishedBytes = 32;  // CCS/Finished, 1.2
inline constexpr std::size_t kRecordOverheadBytes = 29;  // per app record

/// Abbreviated-handshake flight sizes: the resumption ClientHello carries
/// a pre_shared_key extension (1.3) or session ticket (1.2), and the
/// server reply omits the certificate chain entirely — which is why the
/// resumed ServerHello is ~20x smaller than the full one.
inline constexpr std::size_t kResumeClientHelloBytes = 368;
inline constexpr std::size_t kResumeServerHelloBytes = 160;

/// ClientHello retransmit schedule (the transport's loss recovery seen
/// at handshake granularity). Engages only under an active fault episode
/// (see NetCtx::handshake_gate).
inline constexpr netsim::RetryPolicy kHelloRetryPolicy{
    std::chrono::seconds(1), 4};

/// The record layer of an established TLS session: every application
/// record it carries costs kRecordOverheadBytes on the wire. Stackable on
/// any lower Connection — a TcpConnection for direct sessions, or the
/// proxy Tunnel for a session whose server-side leg lives elsewhere.
class TlsSession : public LayeredConnection {
 public:
  explicit TlsSession(const Connection& lower,
                      TlsVersion version = TlsVersion::kTls13)
      : LayeredConnection(lower), version(version) {}

  [[nodiscard]] std::string_view layer_name() const override {
    return "tls";
  }
  [[nodiscard]] std::size_t layer_overhead() const override {
    return kRecordOverheadBytes;
  }

  /// False when the ClientHello retransmit schedule ran dry under a
  /// fault episode: no session keys exist and no record may travel.
  bool established = true;
  /// True when the session was set up via tls_resume (session ticket).
  bool resumed = false;
  TlsVersion version = TlsVersion::kTls13;
  netsim::Duration handshake_time{};
  netsim::SimTime established_at{};
};

/// Runs the handshake over an established lower connection. For 1.3 the
/// client can transmit application data together with its Finished, so
/// the flow completes one RTT after ClientHello; 1.2 requires a second
/// round trip. The returned session keeps a reference to `lower`, which
/// must outlive it.
[[nodiscard]] netsim::Task<TlsSession> tls_handshake(
    const Connection& lower, TlsVersion version = TlsVersion::kTls13);

/// Session-ticket resumption: one round trip of abbreviated-handshake
/// flights for either version (1.3 PSK mode; 1.2 abbreviated handshake),
/// no certificate transfer. The sibling of quic_resume's 0-RTT — TCP+TLS
/// cannot go below one RTT, so a resumed DoH connection still pays
/// TCP connect + this, where QUIC pays nothing. The returned session has
/// `resumed` set and keeps a reference to `lower`.
[[nodiscard]] netsim::Task<TlsSession> tls_resume(
    const Connection& lower, TlsVersion version = TlsVersion::kTls13);

}  // namespace dohperf::transport
