// Simulated QUIC connection establishment (RFC 9000/9001), for the
// DNS-over-QUIC extension (RFC 9250) — one of the five encrypted-DNS
// protocols the paper's background section enumerates.
//
// Timing structure: a fresh QUIC connection completes its combined
// transport + TLS 1.3 handshake in one round trip (Initial ->
// Initial+Handshake), after which the client may send 1-RTT data; with a
// cached session ticket, 0-RTT lets the first request travel with the
// ClientHello.
#pragma once

#include <chrono>

#include "transport/connection.h"

namespace dohperf::transport {

/// Handshake datagram sizes (octets). QUIC pads the client Initial to at
/// least 1200 bytes to prevent amplification (RFC 9000 section 8.1).
inline constexpr std::size_t kQuicClientInitialBytes = 1200;
inline constexpr std::size_t kQuicServerHandshakeBytes = 3000;
inline constexpr std::size_t kQuicShortHeaderOverhead = 28;

/// Initial-packet retransmit schedule (RFC 9002's 1 s initial PTO,
/// doubling). Engages only under an active fault episode (see
/// NetCtx::handshake_gate).
inline constexpr netsim::RetryPolicy kInitialRetryPolicy{
    std::chrono::seconds(1), 5};

/// An established QUIC connection: protected short-header packets charge
/// kQuicShortHeaderOverhead per record on top of the payload.
class QuicConnection : public PathConnection {
 public:
  explicit QuicConnection(netsim::Path path)
      : PathConnection(std::move(path)) {}

  [[nodiscard]] std::string_view layer_name() const override {
    return "quic";
  }
  [[nodiscard]] std::size_t layer_overhead() const override {
    return kQuicShortHeaderOverhead;
  }

  [[nodiscard]] const netsim::Site& client() const { return path().a(); }
  [[nodiscard]] const netsim::Site& server() const { return path().b(); }

  bool zero_rtt = false;
  /// False when the Initial retransmit schedule ran dry under a fault
  /// episode: the connection never came up and must not carry data.
  bool established = true;
  netsim::Duration handshake_time{};
  netsim::SimTime established_at{};
};

/// Fresh connection: one round trip before application data flows.
[[nodiscard]] netsim::Task<QuicConnection> quic_connect(
    netsim::NetCtx& net, const netsim::Site& client,
    const netsim::Site& server);

/// Resumed connection with a cached ticket: 0-RTT — application data may
/// accompany the first flight, so the "handshake" contributes no
/// round trip of its own.
[[nodiscard]] netsim::Task<QuicConnection> quic_resume(
    netsim::NetCtx& net, const netsim::Site& client,
    const netsim::Site& server);

}  // namespace dohperf::transport
