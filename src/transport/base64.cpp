#include "transport/base64.h"

#include <array>

namespace dohperf::transport {
namespace {

constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

constexpr std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> rev{};
  for (auto& v : rev) v = -1;
  for (std::size_t i = 0; i < kAlphabet.size(); ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] =
        static_cast<std::int8_t>(i);
  }
  return rev;
}

constexpr auto kReverse = make_reverse();

}  // namespace

std::string base64url_encode(std::span<const std::uint8_t> in) {
  std::string out;
  out.reserve((in.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= in.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(in[i]) << 16) |
                            (static_cast<std::uint32_t>(in[i + 1]) << 8) |
                            in[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  const std::size_t rem = in.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(in[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(in[i]) << 16) |
                            (static_cast<std::uint32_t>(in[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base64url_decode(
    std::string_view in) {
  if (in.size() % 4 == 1) return std::nullopt;  // impossible length
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 4 * 3 + 2);

  std::uint32_t acc = 0;
  int bits = 0;
  for (const char c : in) {
    const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  // Leftover bits must be zero padding.
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

}  // namespace dohperf::transport
