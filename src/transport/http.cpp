#include "transport/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace dohperf::transport {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

/// Splits off the next CRLF-terminated line; nullopt if no CRLF remains.
std::optional<std::string_view> next_line(std::string_view& text) {
  const std::size_t eol = text.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view line = text.substr(0, eol);
  text.remove_prefix(eol + 2);
  return line;
}

/// Parses "Name: value" header lines until the blank line; false on
/// malformed input.
bool parse_headers(std::string_view& text, HeaderMap& out) {
  for (;;) {
    const auto line = next_line(text);
    if (!line) return false;  // missing terminating blank line
    if (line->empty()) return true;
    const std::size_t colon = line->find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view name = line->substr(0, colon);
    std::string_view value = line->substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    out.add(std::string(name), std::string(value));
  }
}

void serialize_headers(const HeaderMap& headers, std::string& out) {
  for (const auto& [name, value] : headers.fields()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
}

}  // namespace

void HeaderMap::add(std::string name, std::string value) {
  fields_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::set(std::string name, std::string value) {
  std::erase_if(fields_, [&](const auto& f) { return iequals(f.first, name); });
  add(std::move(name), std::move(value));
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& [n, v] : fields_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

std::string HttpRequest::serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out += method;
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  serialize_headers(headers, out);
  out += body;
  return out;
}

std::string HttpResponse::serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out += version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\n";
  serialize_headers(headers, out);
  out += body;
  return out;
}

std::optional<HttpRequest> parse_request(std::string_view text) {
  HttpRequest req;
  const auto start = next_line(text);
  if (!start) return std::nullopt;

  const std::size_t sp1 = start->find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = start->find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  req.method = std::string(start->substr(0, sp1));
  req.target = std::string(start->substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(start->substr(sp2 + 1));
  if (req.method.empty() || req.target.empty()) return std::nullopt;

  if (!parse_headers(text, req.headers)) return std::nullopt;
  req.body = std::string(text);
  return req;
}

std::optional<HttpResponse> parse_response(std::string_view text) {
  HttpResponse resp;
  const auto start = next_line(text);
  if (!start) return std::nullopt;

  const std::size_t sp1 = start->find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = start->find(' ', sp1 + 1);
  resp.version = std::string(start->substr(0, sp1));

  const std::string_view status_str =
      sp2 == std::string_view::npos
          ? start->substr(sp1 + 1)
          : start->substr(sp1 + 1, sp2 - sp1 - 1);
  int status = 0;
  const auto [ptr, ec] = std::from_chars(
      status_str.data(), status_str.data() + status_str.size(), status);
  if (ec != std::errc() || ptr != status_str.data() + status_str.size()) {
    return std::nullopt;
  }
  if (status < 100 || status > 599) return std::nullopt;
  resp.status = status;
  resp.reason = sp2 == std::string_view::npos
                    ? std::string()
                    : std::string(start->substr(sp2 + 1));

  if (!parse_headers(text, resp.headers)) return std::nullopt;
  resp.body = std::string(text);
  return resp;
}

std::optional<std::string_view> query_param(std::string_view target,
                                            std::string_view key) {
  const std::size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) return std::nullopt;
  std::string_view query = target.substr(qmark + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return std::nullopt;
}

}  // namespace dohperf::transport
