// Minimal HTTP/1.1 message model with real (de)serialisation.
//
// The measurement methodology depends on parsing literal header lines the
// Super Proxy returns (x-luminati-timeline, x-luminati-tun-timeline), so
// requests and responses travel as actual serialised octets between
// simulated hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dohperf::transport {

/// Ordered, case-insensitive multimap of header fields.
class HeaderMap {
 public:
  void add(std::string name, std::string value);
  /// Replaces all values of `name` with a single `value`.
  void set(std::string name, std::string value);

  /// First value for `name` (case-insensitive), if present.
  [[nodiscard]] std::optional<std::string_view> get(
      std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const {
    return get(name).has_value();
  }
  [[nodiscard]] std::size_t size() const { return fields_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// An HTTP request.
struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] std::size_t wire_size() const { return serialize().size(); }
};

/// An HTTP response.
struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] std::size_t wire_size() const { return serialize().size(); }
};

/// Parse errors carry a human-readable reason.
struct HttpParseError {
  std::string reason;
};

/// Parses a serialised request; error on malformed framing.
[[nodiscard]] std::optional<HttpRequest> parse_request(std::string_view text);

/// Parses a serialised response.
[[nodiscard]] std::optional<HttpResponse> parse_response(
    std::string_view text);

/// Extracts a query parameter value from a request target
/// ("/dns-query?dns=AAAA" -> "AAAA"); nullopt if absent.
[[nodiscard]] std::optional<std::string_view> query_param(
    std::string_view target, std::string_view key);

}  // namespace dohperf::transport
