#include "transport/tls.h"

namespace dohperf::transport {

std::string_view to_string(TlsVersion v) {
  switch (v) {
    case TlsVersion::kTls12:
      return "TLS 1.2";
    case TlsVersion::kTls13:
      return "TLS 1.3";
  }
  return "?";
}

netsim::Task<TlsSession> tls_handshake(const Connection& lower,
                                       TlsVersion version) {
  netsim::NetCtx& net = lower.net();
  TlsSession session(lower, version);
  const obs::ScopedSpan span = net.span("tls_handshake");
  const obs::ScopedPhase attr = net.phase(obs::Phase::kTlsHandshake);
  if (net.metrics != nullptr) ++net.metrics->counters.tls_handshakes;
  const netsim::SimTime start = net.sim.now();

  // Retransmit gate on the routed path beneath the stack (nullptr for
  // composites like the proxy Tunnel, whose legs gate themselves).
  if (const netsim::Path* path = lower.underlying_path()) {
    const netsim::RetryOutcome hello = co_await net.handshake_gate(
        path->a(), path->b(), kHelloRetryPolicy);
    if (!hello.delivered) {
      session.established = false;
      session.handshake_time = net.sim.now() - start;
      session.established_at = net.sim.now();
      co_return session;
    }
  }

  // ClientHello -> ServerHello (+EncryptedExtensions/Certificate/Finished
  // for 1.3; Certificate/ServerHelloDone for 1.2). Handshake messages are
  // quoted as full flight sizes, so they travel framed as-is.
  co_await lower.send_framed(kClientHelloBytes);
  co_await lower.recv_framed(kServerHelloBytes);

  if (version == TlsVersion::kTls12) {
    // ClientKeyExchange/Finished -> ChangeCipherSpec/Finished (the reply
    // is the first record-layer-framed message of the session).
    co_await lower.send_framed(kClientFinishedBytes);
    co_await session.recv(kServerFinishedBytes);
  }
  // For 1.3 the client Finished piggybacks on the first application data.

  session.handshake_time = net.sim.now() - start;
  session.established_at = net.sim.now();
  co_return session;
}

netsim::Task<TlsSession> tls_resume(const Connection& lower,
                                    TlsVersion version) {
  netsim::NetCtx& net = lower.net();
  TlsSession session(lower, version);
  session.resumed = true;
  const obs::ScopedSpan span = net.span("tls_resume");
  const obs::ScopedPhase attr = net.phase(obs::Phase::kTlsResume);
  if (net.metrics != nullptr) ++net.metrics->counters.tls_resumptions;
  const netsim::SimTime start = net.sim.now();

  if (const netsim::Path* path = lower.underlying_path()) {
    const netsim::RetryOutcome hello = co_await net.handshake_gate(
        path->a(), path->b(), kHelloRetryPolicy);
    if (!hello.delivered) {
      session.established = false;
      session.handshake_time = net.sim.now() - start;
      session.established_at = net.sim.now();
      co_return session;
    }
  }

  // One abbreviated round trip for either version: ClientHello+PSK ->
  // ServerHello..Finished (1.3), or ClientHello+ticket -> ServerHello/
  // CCS/Finished (1.2's abbreviated handshake skips the second flight).
  // No certificate travels, so both flights are small.
  co_await lower.send_framed(kResumeClientHelloBytes);
  co_await lower.recv_framed(kResumeServerHelloBytes);

  session.handshake_time = net.sim.now() - start;
  session.established_at = net.sim.now();
  co_return session;
}

}  // namespace dohperf::transport
