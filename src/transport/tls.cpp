#include "transport/tls.h"

namespace dohperf::transport {

std::string_view to_string(TlsVersion v) {
  switch (v) {
    case TlsVersion::kTls12:
      return "TLS 1.2";
    case TlsVersion::kTls13:
      return "TLS 1.3";
  }
  return "?";
}

netsim::Task<TlsSession> tls_handshake(netsim::NetCtx& net,
                                       const TcpConnection& conn,
                                       TlsVersion version) {
  const netsim::SimTime start = net.sim.now();

  // ClientHello -> ServerHello (+EncryptedExtensions/Certificate/Finished
  // for 1.3; Certificate/ServerHelloDone for 1.2).
  co_await net.hop(conn.client, conn.server, kClientHelloBytes);
  co_await net.hop(conn.server, conn.client, kServerHelloBytes);

  if (version == TlsVersion::kTls12) {
    // ClientKeyExchange/Finished -> ChangeCipherSpec/Finished.
    co_await net.hop(conn.client, conn.server, kClientFinishedBytes);
    co_await net.hop(conn.server, conn.client, kRecordOverheadBytes + 32);
  }
  // For 1.3 the client Finished piggybacks on the first application data.

  TlsSession session;
  session.version = version;
  session.handshake_time = net.sim.now() - start;
  session.established_at = net.sim.now();
  co_return session;
}

}  // namespace dohperf::transport
