#include "transport/tcp.h"

namespace dohperf::transport {

netsim::Task<TcpConnection> tcp_connect(netsim::NetCtx& net,
                                        const netsim::Site& client,
                                        const netsim::Site& server) {
  TcpConnection conn{netsim::Path(net, client, server)};
  const obs::ScopedSpan span = net.span("tcp_handshake");
  const obs::ScopedPhase attr = net.phase(obs::Phase::kTcpHandshake);
  if (net.metrics != nullptr) ++net.metrics->counters.tcp_handshakes;
  const netsim::SimTime start = net.sim.now();
  const netsim::RetryOutcome syn =
      co_await net.handshake_gate(client, server, kSynRetryPolicy);
  if (!syn.delivered) {
    conn.established = false;
    conn.handshake_time = net.sim.now() - start;
    conn.established_at = net.sim.now();
    co_return conn;
  }
  co_await conn.send_framed(kSynBytes);     // SYN
  co_await conn.recv_framed(kSynAckBytes);  // SYN/ACK
  conn.handshake_time = net.sim.now() - start;
  conn.established_at = net.sim.now();
  co_return conn;
}

}  // namespace dohperf::transport
