#include "transport/tcp.h"

namespace dohperf::transport {

netsim::Task<TcpConnection> tcp_connect(netsim::NetCtx& net,
                                        const netsim::Site& client,
                                        const netsim::Site& server) {
  const netsim::SimTime start = net.sim.now();
  co_await net.hop(client, server, kSynBytes);     // SYN
  co_await net.hop(server, client, kSynAckBytes);  // SYN/ACK
  TcpConnection conn;
  conn.client = client;
  conn.server = server;
  conn.handshake_time = net.sim.now() - start;
  conn.established_at = net.sim.now();
  co_return conn;
}

}  // namespace dohperf::transport
