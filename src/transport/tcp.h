// Simulated TCP connection establishment.
//
// Only the timing structure matters to the study: a connect costs one
// round trip (SYN, SYN/ACK) before the client may send data with its ACK,
// which is exactly the "Connect" value BrightData's tun-timeline reports
// (paper Figure 2, steps 5-6).
#pragma once

#include <chrono>

#include "transport/connection.h"

namespace dohperf::transport {

/// Typical segment sizes (octets, incl. IP/TCP headers) used for the
/// serialisation component of the delay.
inline constexpr std::size_t kSynBytes = 60;
inline constexpr std::size_t kSynAckBytes = 60;
inline constexpr std::size_t kAckBytes = 52;

/// SYN retransmit schedule: RFC 6298's 1 s initial RTO, doubling, with a
/// browser-like bound on attempts. Engages only under an active fault
/// episode (see NetCtx::handshake_gate).
inline constexpr netsim::RetryPolicy kSynRetryPolicy{
    std::chrono::seconds(1), 5};

/// An established connection riding directly on the routed path; records
/// what the handshake cost so later exchanges can reuse the figures. TCP
/// adds no per-record framing to the byte model (segment headers are
/// already folded into the handshake sizes and the layers above quote
/// full record sizes), so layer_overhead() stays zero.
class TcpConnection : public PathConnection {
 public:
  explicit TcpConnection(netsim::Path path)
      : PathConnection(std::move(path)) {}

  [[nodiscard]] std::string_view layer_name() const override {
    return "tcp";
  }
  [[nodiscard]] const netsim::Site& client() const { return path().a(); }
  [[nodiscard]] const netsim::Site& server() const { return path().b(); }

  /// False when the SYN retransmit schedule ran dry under a fault
  /// episode: the connection never came up and must not carry data.
  bool established = true;
  netsim::Duration handshake_time{};
  netsim::SimTime established_at{};
};

/// Performs the 3-way handshake; completes when the client may transmit
/// (i.e. after SYN/ACK arrives — the final ACK travels with first data).
[[nodiscard]] netsim::Task<TcpConnection> tcp_connect(
    netsim::NetCtx& net, const netsim::Site& client,
    const netsim::Site& server);

}  // namespace dohperf::transport
