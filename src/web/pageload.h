// Synthetic web page loads — the paper's Section 7 future-work question:
// how does DoH's per-resolution cost translate into page load time, where
// DNS competes with connection setup and transfer?
//
// A page references `domains` unique third-party hosts; each is resolved
// (all resolutions proceed in parallel, as browsers do), then fetched over
// its own HTTPS connection carrying `objects_per_domain` objects. Page
// load time is the completion of the slowest domain.
#pragma once

#include <cstddef>
#include <string>

#include "dns/name.h"
#include "netsim/netctx.h"
#include "resolver/doh_server.h"
#include "resolver/recursive.h"
#include "transport/tls.h"

namespace dohperf::web {

/// Shape of a synthetic page.
struct PageSpec {
  int domains = 8;
  int objects_per_domain = 3;
  std::size_t object_bytes = 20 * 1024;
  bool https = true;  ///< TLS 1.3 handshake per fetched domain.
};

/// How the page's names are resolved.
enum class DnsMode {
  kDo53,      ///< Default resolver, one UDP exchange per name.
  kDohCold,   ///< DoH: TCP+TLS handshake to the PoP first, then all
              ///< queries multiplexed on the session.
  kDohWarm,   ///< DoH with an already-established session (kept warm by
              ///< the browser between pages).
};

[[nodiscard]] std::string_view to_string(DnsMode mode);

/// Outcome of one page load.
struct PageLoadResult {
  bool ok = false;
  double total_ms = 0.0;         ///< Page load time (slowest domain done).
  double dns_setup_ms = 0.0;     ///< DoH session establishment (0 for
                                 ///< Do53 / warm DoH).
  double dns_critical_ms = 0.0;  ///< Slowest single name resolution.
  double fetch_critical_ms = 0.0;///< Slowest domain fetch (post-DNS).
};

/// Everything a page load needs from the world.
struct PageLoadContext {
  netsim::Site client;
  /// Default resolver (used by kDo53 and for the DoH bootstrap).
  resolver::RecursiveResolver* default_resolver = nullptr;
  /// DoH front-end at the serving PoP (DoH modes only).
  resolver::DohServer* doh = nullptr;
  std::string doh_hostname;
  /// The content server hosting every object (the study's web host).
  netsim::Site web_server;
  /// Zone under which the page's fresh host names live.
  dns::DomainName origin;
};

/// Loads one synthetic page; every domain is a fresh (cache-missing)
/// subdomain of `origin`, matching the study's worst-case framing.
[[nodiscard]] netsim::Task<PageLoadResult> load_page(
    netsim::NetCtx& net, const PageLoadContext& ctx, PageSpec spec,
    DnsMode mode);

}  // namespace dohperf::web
