#include "web/pageload.h"

#include <algorithm>
#include <vector>

#include "dns/wire.h"
#include "resolver/stub.h"
#include "transport/tcp.h"
#include "transport/tls.h"

namespace dohperf::web {
namespace {

using netsim::NetCtx;
using netsim::SimTime;
using netsim::Task;
using netsim::from_ms;
using netsim::ms_between;

/// Browser request-header padding beyond the bare GET line (octets).
constexpr std::size_t kRequestHeaderPadBytes = 64;
/// Web server service time per static object (ms).
constexpr double kStaticContentMs = 0.4;

/// Resolves one fresh name in the requested mode; returns elapsed ms
/// (negative on failure).
Task<double> resolve_name(NetCtx& net, const PageLoadContext& ctx,
                          DnsMode mode, dns::Message query) {
  const SimTime start = net.sim.now();
  if (mode == DnsMode::kDo53) {
    const resolver::StubResult result = co_await resolver::stub_resolve(
        net, ctx.client, *ctx.default_resolver, std::move(query));
    co_return result.ok() ? result.elapsed_ms : -1.0;
  }

  // DoH: an HTTPS GET multiplexed over the (already established) session,
  // modelled as the record layer of that warm session.
  transport::HttpRequest req;
  req.method = "GET";
  req.target = resolver::doh_get_target(query);
  req.headers.add("host", ctx.doh_hostname);
  const transport::PathConnection doh_conn{
      netsim::Path(net, ctx.client, ctx.doh->site())};
  const transport::TlsSession tls(doh_conn);
  co_await tls.send(req);
  const transport::HttpResponse resp = co_await ctx.doh->handle(net, req);
  co_await tls.recv(resp);
  co_return resp.status == 200 ? ms_between(start, net.sim.now()) : -1.0;
}

/// Resolves then fetches one domain; returns (dns_ms, completion offset
/// from page start in ms), dns < 0 on failure.
struct DomainOutcome {
  double dns_ms = -1.0;
  double done_ms = 0.0;
};

Task<DomainOutcome> load_domain(NetCtx& net, const PageLoadContext& ctx,
                                const PageSpec& spec, DnsMode mode,
                                SimTime page_start) {
  DomainOutcome out;
  const dns::Message query =
      resolver::make_probe_query(net.rng, ctx.origin);

  out.dns_ms = co_await resolve_name(net, ctx, mode, query);
  if (out.dns_ms < 0) co_return out;

  // Fetch: connection to the content host, then the objects in sequence.
  const transport::TcpConnection tcp =
      co_await transport::tcp_connect(net, ctx.client, ctx.web_server);
  if (spec.https) {
    co_await transport::tls_handshake(tcp);
  }
  // Response records are priced with the TLS record overhead regardless
  // of scheme — the byte model treats object sizes as on-session sizes.
  const transport::TlsSession session(tcp);
  for (int i = 0; i < spec.objects_per_domain; ++i) {
    transport::HttpRequest req;
    req.method = "GET";
    req.target = "/obj" + std::to_string(i);
    co_await tcp.send(req.wire_size() + kRequestHeaderPadBytes);
    co_await net.process(from_ms(kStaticContentMs));
    co_await session.recv(spec.object_bytes);
  }
  out.done_ms = ms_between(page_start, net.sim.now());
  co_return out;
}

}  // namespace

std::string_view to_string(DnsMode mode) {
  switch (mode) {
    case DnsMode::kDo53:
      return "Do53";
    case DnsMode::kDohCold:
      return "DoH (cold session)";
    case DnsMode::kDohWarm:
      return "DoH (warm session)";
  }
  return "?";
}

netsim::Task<PageLoadResult> load_page(netsim::NetCtx& net,
                                       const PageLoadContext& ctx,
                                       PageSpec spec, DnsMode mode) {
  const auto flow_span = net.span("pageload");
  obs::FlowAttributionScope attr_scope(net.attribution, net.sim,
                                       "pageload");
  PageLoadResult result;
  const SimTime page_start = net.sim.now();

  // A cold DoH session pays bootstrap + TCP + TLS before the first query.
  if (mode == DnsMode::kDohCold) {
    const auto id = static_cast<std::uint16_t>(net.rng.next() & 0xFFFF);
    co_await resolver::stub_resolve(
        net, ctx.client, *ctx.default_resolver,
        dns::Message::make_query(
            id, dns::DomainName::parse(ctx.doh_hostname)));
    const transport::TcpConnection tcp =
        co_await transport::tcp_connect(net, ctx.client, ctx.doh->site());
    co_await transport::tls_handshake(tcp);
    result.dns_setup_ms = ms_between(page_start, net.sim.now());
  }

  // All domains proceed in parallel (tasks start eagerly).
  std::vector<netsim::Task<DomainOutcome>> tasks;
  tasks.reserve(static_cast<std::size_t>(spec.domains));
  for (int d = 0; d < spec.domains; ++d) {
    tasks.push_back(load_domain(net, ctx, spec, mode, page_start));
  }

  result.ok = true;
  for (auto& task : tasks) {
    const DomainOutcome out = co_await task;
    if (out.dns_ms < 0) {
      result.ok = false;
      continue;
    }
    result.dns_critical_ms = std::max(result.dns_critical_ms, out.dns_ms);
    result.total_ms = std::max(result.total_ms, out.done_ms);
    result.fetch_critical_ms =
        std::max(result.fetch_critical_ms, out.done_ms - out.dns_ms);
  }
  co_return result;
}

}  // namespace dohperf::web
