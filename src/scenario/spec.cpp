#include "scenario/spec.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace dohperf::scenario {
namespace {

// ---------------------------------------------------------------------
// Field registry: every settable scalar key, its section, type, and a
// pointer accessor into a CampaignSpec. One table drives the parser,
// the canonical serializer, set_key(), and the sweep axis validator, so
// they can never disagree about what a key means.
// ---------------------------------------------------------------------

enum class FieldType {
  kString,
  kStringList,
  kBool,
  kInt,
  kSizeT,
  kUint64,
  kDouble,
  kDurationMs,  ///< Stored as netsim::Duration, written as fractional ms.
  kTls,         ///< "tls12" | "tls13".
  kSink,        ///< "retained" | "streaming".
};

/// Extra validation on numeric fields.
enum : unsigned {
  kNoCheck = 0,
  kProbability = 1,  ///< double in [0, 1].
  kNonNegative = 2,  ///< double >= 0.
  kPositive = 4,     ///< double > 0 / int >= 1.
};

struct FieldDef {
  const char* section;  ///< "" = top level.
  const char* key;
  FieldType type;
  unsigned checks;
  void* (*access)(CampaignSpec&);
};

#define DOHPERF_SPEC_FIELD(sec, key, ftype, checks, member)            \
  FieldDef {                                                           \
    sec, key, FieldType::ftype, checks,                                \
        +[](CampaignSpec& s) -> void* { return &(s.member); }          \
  }

const FieldDef kFields[] = {
    DOHPERF_SPEC_FIELD("", "name", kString, kNoCheck, name),
    DOHPERF_SPEC_FIELD("", "sink", kSink, kNoCheck, sink),

    DOHPERF_SPEC_FIELD("world", "seed", kUint64, kNoCheck, world.seed),
    DOHPERF_SPEC_FIELD("world", "client_scale", kDouble, kPositive,
                       world.client_scale),
    DOHPERF_SPEC_FIELD("world", "only_countries", kStringList, kNoCheck,
                       world.only_countries),
    DOHPERF_SPEC_FIELD("world", "couple_infra", kBool, kNoCheck,
                       world.couple_infra),
    DOHPERF_SPEC_FIELD("world", "tls_version", kTls, kNoCheck,
                       world.tls_version),
    DOHPERF_SPEC_FIELD("world", "perfect_anycast", kBool, kNoCheck,
                       world.perfect_anycast),
    DOHPERF_SPEC_FIELD("world", "authority_city", kString, kNoCheck,
                       world.authority_city),
    DOHPERF_SPEC_FIELD("world", "mislabel_rate", kDouble, kProbability,
                       world.mislabel_rate),
    DOHPERF_SPEC_FIELD("world", "remote_dns_rate", kDouble, kProbability,
                       world.remote_dns_rate),

    DOHPERF_SPEC_FIELD("campaign", "runs_per_client", kInt, kPositive,
                       campaign.runs_per_client),
    DOHPERF_SPEC_FIELD("campaign", "provider_failure_rate", kDouble,
                       kProbability, campaign.provider_failure_rate),
    DOHPERF_SPEC_FIELD("campaign", "atlas_measurements_per_country", kInt,
                       kNonNegative, campaign.atlas_measurements_per_country),
    DOHPERF_SPEC_FIELD("campaign", "batch_size", kSizeT, kPositive,
                       campaign.batch_size),
    DOHPERF_SPEC_FIELD("campaign", "threads", kInt, kNonNegative,
                       campaign.threads),
    DOHPERF_SPEC_FIELD("campaign", "series_window_ms", kDurationMs,
                       kPositive, campaign.series_window),
    DOHPERF_SPEC_FIELD("campaign", "session_spacing_ms", kDurationMs,
                       kNonNegative, campaign.session_spacing),

    DOHPERF_SPEC_FIELD("faults", "loss_spike_probability", kDouble,
                       kProbability, campaign.faults.loss_spike_probability),
    DOHPERF_SPEC_FIELD("faults", "spike_extra_loss", kDouble, kProbability,
                       campaign.faults.spike_extra_loss),
    DOHPERF_SPEC_FIELD("faults", "spike_radius_miles", kDouble, kNonNegative,
                       campaign.faults.spike_radius_miles),
    DOHPERF_SPEC_FIELD("faults", "spike_start_max_ms", kDurationMs,
                       kNonNegative, campaign.faults.spike_start_max),
    DOHPERF_SPEC_FIELD("faults", "spike_duration_ms", kDurationMs,
                       kNonNegative, campaign.faults.spike_duration),
    DOHPERF_SPEC_FIELD("faults", "blackout_probability", kDouble,
                       kProbability, campaign.faults.blackout_probability),
    DOHPERF_SPEC_FIELD("faults", "blackout_radius_miles", kDouble,
                       kNonNegative, campaign.faults.blackout_radius_miles),
    DOHPERF_SPEC_FIELD("faults", "blackout_start_max_ms", kDurationMs,
                       kNonNegative, campaign.faults.blackout_start_max),
    DOHPERF_SPEC_FIELD("faults", "blackout_duration_ms", kDurationMs,
                       kNonNegative, campaign.faults.blackout_duration),
    DOHPERF_SPEC_FIELD("faults", "brownout_probability", kDouble,
                       kProbability, campaign.faults.brownout_probability),
    DOHPERF_SPEC_FIELD("faults", "brownout_multiplier", kDouble, kPositive,
                       campaign.faults.brownout_multiplier),
    DOHPERF_SPEC_FIELD("faults", "brownout_radius_miles", kDouble,
                       kNonNegative, campaign.faults.brownout_radius_miles),
    DOHPERF_SPEC_FIELD("faults", "brownout_start_max_ms", kDurationMs,
                       kNonNegative, campaign.faults.brownout_start_max),
    DOHPERF_SPEC_FIELD("faults", "brownout_duration_ms", kDurationMs,
                       kNonNegative, campaign.faults.brownout_duration),
    DOHPERF_SPEC_FIELD("faults", "provider_outage_probability", kDouble,
                       kProbability,
                       campaign.faults.provider_outage_probability),

    DOHPERF_SPEC_FIELD("faults", "provider_outage_period_ms", kDurationMs,
                       kNonNegative, campaign.faults.provider_outage_period),
    DOHPERF_SPEC_FIELD("faults", "provider_outage_duration_ms", kDurationMs,
                       kNonNegative,
                       campaign.faults.provider_outage_duration),
    DOHPERF_SPEC_FIELD("faults", "provider_outage_stagger_ms", kDurationMs,
                       kNonNegative, campaign.faults.provider_outage_stagger),
    DOHPERF_SPEC_FIELD("faults", "regional_blackout_period_ms", kDurationMs,
                       kNonNegative,
                       campaign.faults.regional_blackout_period),
    DOHPERF_SPEC_FIELD("faults", "regional_blackout_duration_ms",
                       kDurationMs, kNonNegative,
                       campaign.faults.regional_blackout_duration),
    DOHPERF_SPEC_FIELD("faults", "regional_blackout_radius_miles", kDouble,
                       kNonNegative,
                       campaign.faults.regional_blackout_radius_miles),

    DOHPERF_SPEC_FIELD("slo", "enabled", kBool, kNoCheck,
                       campaign.slo.enabled),
    DOHPERF_SPEC_FIELD("slo", "window_ms", kDurationMs, kPositive,
                       campaign.slo.window),
    DOHPERF_SPEC_FIELD("slo", "availability_objective", kDouble,
                       kProbability, campaign.slo.availability_objective),
    DOHPERF_SPEC_FIELD("slo", "p99_objective_ms", kDouble, kNonNegative,
                       campaign.slo.p99_objective_ms),
    DOHPERF_SPEC_FIELD("slo", "fast_short_ms", kDurationMs, kPositive,
                       campaign.slo.fast_short),
    DOHPERF_SPEC_FIELD("slo", "fast_long_ms", kDurationMs, kPositive,
                       campaign.slo.fast_long),
    DOHPERF_SPEC_FIELD("slo", "fast_burn", kDouble, kPositive,
                       campaign.slo.fast_burn),
    DOHPERF_SPEC_FIELD("slo", "slow_short_ms", kDurationMs, kPositive,
                       campaign.slo.slow_short),
    DOHPERF_SPEC_FIELD("slo", "slow_long_ms", kDurationMs, kPositive,
                       campaign.slo.slow_long),
    DOHPERF_SPEC_FIELD("slo", "slow_burn", kDouble, kPositive,
                       campaign.slo.slow_burn),

    DOHPERF_SPEC_FIELD("anomalies", "enabled", kBool, kNoCheck,
                       campaign.anomalies.enabled),
    DOHPERF_SPEC_FIELD("anomalies", "slow_flow_ms", kDouble, kNonNegative,
                       campaign.anomalies.slow_flow_ms),
    DOHPERF_SPEC_FIELD("anomalies", "ring_capacity", kSizeT, kNonNegative,
                       campaign.anomalies.ring_capacity),

    DOHPERF_SPEC_FIELD("stream", "client_stats", kBool, kNoCheck,
                       campaign.stream.client_stats),
    DOHPERF_SPEC_FIELD("stream", "run_capacity", kInt, kPositive,
                       campaign.stream.run_capacity),

    DOHPERF_SPEC_FIELD("cache", "enabled", kBool, kNoCheck,
                       campaign.cache.enabled),
    DOHPERF_SPEC_FIELD("cache", "catalog_size", kSizeT, kPositive,
                       campaign.cache.catalog_size),
    DOHPERF_SPEC_FIELD("cache", "zipf_exponent", kDouble, kPositive,
                       campaign.cache.zipf_exponent),
    DOHPERF_SPEC_FIELD("cache", "population", kDouble, kPositive,
                       campaign.cache.population),
    DOHPERF_SPEC_FIELD("cache", "isp_share", kDouble, kProbability,
                       campaign.cache.isp_share),
    DOHPERF_SPEC_FIELD("cache", "queries_per_user_per_hour", kDouble,
                       kPositive, campaign.cache.queries_per_user_per_hour),
    DOHPERF_SPEC_FIELD("cache", "ttl_s", kDouble, kPositive,
                       campaign.cache.ttl_s),

    DOHPERF_SPEC_FIELD("reuse", "enabled", kBool, kNoCheck,
                       campaign.reuse.enabled),
    DOHPERF_SPEC_FIELD("reuse", "queries_per_session", kInt, kPositive,
                       campaign.reuse.queries_per_session),
    DOHPERF_SPEC_FIELD("reuse", "think_time_ms", kDurationMs, kNonNegative,
                       campaign.reuse.think_time),
    DOHPERF_SPEC_FIELD("reuse", "idle_timeout_ms", kDurationMs, kPositive,
                       campaign.reuse.pool.idle_timeout),
    DOHPERF_SPEC_FIELD("reuse", "max_queries_per_connection", kInt,
                       kPositive,
                       campaign.reuse.pool.max_queries_per_connection),
    DOHPERF_SPEC_FIELD("reuse", "pool_entries", kSizeT, kPositive,
                       campaign.reuse.pool.max_entries),
    DOHPERF_SPEC_FIELD("reuse", "session_tickets", kBool, kNoCheck,
                       campaign.reuse.pool.session_tickets),
    DOHPERF_SPEC_FIELD("reuse", "ticket_lifetime_ms", kDurationMs,
                       kPositive, campaign.reuse.pool.ticket_lifetime),

    DOHPERF_SPEC_FIELD("outputs", "summary_json", kString, kNoCheck,
                       outputs.summary_json),
    DOHPERF_SPEC_FIELD("outputs", "fig4_csv", kString, kNoCheck,
                       outputs.fig4_csv),
    DOHPERF_SPEC_FIELD("outputs", "fig5_csv", kString, kNoCheck,
                       outputs.fig5_csv),
    DOHPERF_SPEC_FIELD("outputs", "metrics_csv", kString, kNoCheck,
                       outputs.metrics_csv),
    DOHPERF_SPEC_FIELD("outputs", "series_csv", kString, kNoCheck,
                       outputs.series_csv),
    DOHPERF_SPEC_FIELD("outputs", "openmetrics", kString, kNoCheck,
                       outputs.openmetrics),
    DOHPERF_SPEC_FIELD("outputs", "anomalies_dir", kString, kNoCheck,
                       outputs.anomalies_dir),
    DOHPERF_SPEC_FIELD("outputs", "availability_csv", kString, kNoCheck,
                       outputs.availability_csv),
    DOHPERF_SPEC_FIELD("outputs", "slo_alerts_csv", kString, kNoCheck,
                       outputs.slo_alerts_csv),
    DOHPERF_SPEC_FIELD("outputs", "attribution_csv", kString, kNoCheck,
                       outputs.attribution_csv),
};

#undef DOHPERF_SPEC_FIELD

/// Section emission order for the canonical text (and the section-name
/// whitelist, [sweep] aside).
const char* const kSections[] = {"",       "world",     "campaign",
                                 "faults", "slo",       "anomalies",
                                 "stream", "cache",     "reuse",
                                 "outputs"};

std::string dotted(const FieldDef& f) {
  return f.section[0] == '\0' ? std::string(f.key)
                              : std::string(f.section) + "." + f.key;
}

const FieldDef* find_field(std::string_view key) {
  for (const FieldDef& f : kFields) {
    if (dotted(f) == key) return &f;
  }
  return nullptr;
}

bool known_section(std::string_view name) {
  for (const char* s : kSections) {
    if (name == s) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Parses a double-quoted string token (the only string form specs
/// accept); supports \" and \\ escapes, rejects control characters.
bool parse_quoted(std::string_view token, std::string* out,
                  std::string* error) {
  if (token.size() < 2 || token.front() != '"' || token.back() != '"') {
    *error = "expected a double-quoted string";
    return false;
  }
  out->clear();
  for (std::size_t i = 1; i + 1 < token.size(); ++i) {
    char c = token[i];
    if (c == '\\') {
      if (i + 2 >= token.size() ||
          (token[i + 1] != '"' && token[i + 1] != '\\')) {
        *error = "bad escape in string (only \\\" and \\\\ are allowed)";
        return false;
      }
      c = token[++i];
    } else if (c == '"') {
      *error = "unescaped quote inside string";
      return false;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *error = "control character inside string";
      return false;
    }
    *out += c;
  }
  return true;
}

bool parse_bool(std::string_view token, bool* out, std::string* error) {
  if (token == "true") {
    *out = true;
    return true;
  }
  if (token == "false") {
    *out = false;
    return true;
  }
  *error = "expected true or false";
  return false;
}

bool integer_shaped(std::string_view token, bool allow_negative) {
  if (!token.empty() && (token.front() == '+' ||
                         (allow_negative && token.front() == '-'))) {
    token.remove_prefix(1);
  }
  if (token.empty()) return false;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool parse_double(std::string_view token, double* out, std::string* error) {
  const std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty() || errno == ERANGE ||
      !std::isfinite(v)) {
    *error = "expected a finite number";
    return false;
  }
  *out = v;
  return true;
}

/// Splits a `[a, b, c]` list into element tokens, respecting quotes.
bool split_list(std::string_view text, std::vector<std::string>* out,
                std::string* error) {
  text = trim(text);
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    *error = "expected a [v1, v2, ...] list";
    return false;
  }
  text = trim(text.substr(1, text.size() - 2));
  out->clear();
  if (text.empty()) return true;

  std::string current;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      current += c;
      if (c == '\\' && i + 1 < text.size()) {
        current += text[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      current += c;
    } else if (c == ',') {
      const std::string_view elem = trim(current);
      if (elem.empty()) {
        *error = "empty list element";
        return false;
      }
      out->emplace_back(elem);
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_string) {
    *error = "unterminated string in list";
    return false;
  }
  const std::string_view last = trim(current);
  if (last.empty()) {
    *error = "trailing comma in list";
    return false;
  }
  out->emplace_back(last);
  return true;
}

// ---------------------------------------------------------------------
// Typed set / get
// ---------------------------------------------------------------------

/// Millisecond <-> Duration conversions for spec fields. from_ms()
/// truncates, which can drop one microsecond when the printed ms value
/// re-parses a hair below the integer tick count; rounding makes
/// print -> parse the exact identity the canonicalizer promises.
netsim::Duration duration_from_ms_token(double ms) {
  return netsim::Duration(static_cast<std::int64_t>(std::llround(ms * 1000.0)));
}

bool check_value(const FieldDef& f, double v, std::string* error) {
  if ((f.checks & kProbability) != 0 && (v < 0.0 || v > 1.0)) {
    *error = "value must be a probability in [0, 1]";
    return false;
  }
  if ((f.checks & kNonNegative) != 0 && v < 0.0) {
    *error = "value must be >= 0";
    return false;
  }
  if ((f.checks & kPositive) != 0 && v <= 0.0) {
    *error = "value must be > 0";
    return false;
  }
  return true;
}

bool set_field(CampaignSpec& spec, const FieldDef& f,
               std::string_view value_text, std::string* error) {
  void* p = f.access(spec);
  switch (f.type) {
    case FieldType::kString: {
      return parse_quoted(value_text, static_cast<std::string*>(p), error);
    }
    case FieldType::kStringList: {
      std::vector<std::string> tokens;
      if (!split_list(value_text, &tokens, error)) return false;
      auto* list = static_cast<std::vector<std::string>*>(p);
      list->clear();
      for (const std::string& t : tokens) {
        std::string s;
        if (!parse_quoted(t, &s, error)) return false;
        list->push_back(std::move(s));
      }
      return true;
    }
    case FieldType::kBool:
      return parse_bool(value_text, static_cast<bool*>(p), error);
    case FieldType::kInt: {
      if (!integer_shaped(value_text, true)) {
        *error = "expected an integer";
        return false;
      }
      const long long v = std::strtoll(std::string(value_text).c_str(),
                                       nullptr, 10);
      if (!check_value(f, static_cast<double>(v), error)) return false;
      *static_cast<int*>(p) = static_cast<int>(v);
      return true;
    }
    case FieldType::kSizeT: {
      if (!integer_shaped(value_text, false)) {
        *error = "expected a non-negative integer";
        return false;
      }
      const unsigned long long v =
          std::strtoull(std::string(value_text).c_str(), nullptr, 10);
      if (!check_value(f, static_cast<double>(v), error)) return false;
      *static_cast<std::size_t*>(p) = static_cast<std::size_t>(v);
      return true;
    }
    case FieldType::kUint64: {
      if (!integer_shaped(value_text, false)) {
        *error = "expected a non-negative integer";
        return false;
      }
      *static_cast<std::uint64_t*>(p) =
          std::strtoull(std::string(value_text).c_str(), nullptr, 10);
      return true;
    }
    case FieldType::kDouble: {
      double v = 0.0;
      if (!parse_double(value_text, &v, error)) return false;
      if (!check_value(f, v, error)) return false;
      *static_cast<double*>(p) = v;
      return true;
    }
    case FieldType::kDurationMs: {
      double ms = 0.0;
      if (!parse_double(value_text, &ms, error)) return false;
      if (!check_value(f, ms, error)) return false;
      *static_cast<netsim::Duration*>(p) = duration_from_ms_token(ms);
      return true;
    }
    case FieldType::kTls: {
      std::string s;
      if (!parse_quoted(value_text, &s, error)) return false;
      auto* v = static_cast<transport::TlsVersion*>(p);
      if (s == "tls12") {
        *v = transport::TlsVersion::kTls12;
      } else if (s == "tls13") {
        *v = transport::TlsVersion::kTls13;
      } else {
        *error = "tls_version must be \"tls12\" or \"tls13\"";
        return false;
      }
      return true;
    }
    case FieldType::kSink: {
      std::string s;
      if (!parse_quoted(value_text, &s, error)) return false;
      auto* v = static_cast<SinkMode*>(p);
      if (s == "retained") {
        *v = SinkMode::kRetained;
      } else if (s == "streaming") {
        *v = SinkMode::kStreaming;
      } else {
        *error = "sink must be \"retained\" or \"streaming\"";
        return false;
      }
      return true;
    }
  }
  *error = "internal: unhandled field type";
  return false;
}

std::string get_field(const CampaignSpec& spec, const FieldDef& f) {
  // The accessors are non-const for set_field; reading through them
  // never mutates.
  void* p = f.access(const_cast<CampaignSpec&>(spec));
  switch (f.type) {
    case FieldType::kString:
      return quote(*static_cast<const std::string*>(p));
    case FieldType::kStringList: {
      const auto* list = static_cast<const std::vector<std::string>*>(p);
      std::string out = "[";
      for (std::size_t i = 0; i < list->size(); ++i) {
        if (i > 0) out += ", ";
        out += quote((*list)[i]);
      }
      out += "]";
      return out;
    }
    case FieldType::kBool:
      return *static_cast<const bool*>(p) ? "true" : "false";
    case FieldType::kInt:
      return std::to_string(*static_cast<const int*>(p));
    case FieldType::kSizeT:
      return std::to_string(*static_cast<const std::size_t*>(p));
    case FieldType::kUint64:
      return std::to_string(*static_cast<const std::uint64_t*>(p));
    case FieldType::kDouble:
      return format_double(*static_cast<const double*>(p));
    case FieldType::kDurationMs:
      return format_double(
          netsim::to_ms(*static_cast<const netsim::Duration*>(p)));
    case FieldType::kTls:
      return *static_cast<const transport::TlsVersion*>(p) ==
                     transport::TlsVersion::kTls12
                 ? "\"tls12\""
                 : "\"tls13\"";
    case FieldType::kSink:
      return *static_cast<const SinkMode*>(p) == SinkMode::kRetained
                 ? "\"retained\""
                 : "\"streaming\"";
  }
  return {};
}

/// Keys that cannot change a run's results and are therefore excluded
/// from the content hash (and rejected as sweep axes).
bool result_neutral(std::string_view key) {
  return key == "campaign.threads" || key.substr(0, 8) == "outputs.";
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string_view to_string(SinkMode mode) {
  return mode == SinkMode::kRetained ? "retained" : "streaming";
}

std::string format_double(double v) {
  // Integral values print as plain integers ("750", not "7.5e+02") —
  // the canonical text is meant to be read and edited by humans.
  const auto integral = static_cast<long long>(v);
  if (static_cast<double>(integral) == v && std::fabs(v) < 1e15) {
    return std::to_string(integral);
  }
  for (int prec = 1; prec <= 17; ++prec) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool set_key(CampaignSpec& spec, const std::string& dotted_key,
             std::string_view value_text, std::string* canonical,
             std::string* error) {
  const FieldDef* f = find_field(dotted_key);
  if (f == nullptr) {
    if (error != nullptr) *error = "unknown key \"" + dotted_key + "\"";
    return false;
  }
  std::string local_error;
  if (!set_field(spec, *f, trim(value_text), &local_error)) {
    if (error != nullptr) {
      *error = "key \"" + dotted_key + "\": " + local_error;
    }
    return false;
  }
  if (canonical != nullptr) *canonical = get_field(spec, *f);
  return true;
}

SpecParseResult parse_spec(std::string_view text,
                           const std::string& origin) {
  SpecParseResult result;
  SpecDocument& doc = result.doc;
  CampaignSpec scratch;  // validates sweep values without touching base

  std::set<std::string> seen_keys;
  std::set<std::string> seen_sections;
  std::set<std::string> seen_axes;
  std::string section;
  bool in_sweep = false;

  const auto fail = [&](int line, const std::string& message) {
    result.error =
        "spec: " + origin + ":" + std::to_string(line) + ": " + message;
  };

  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_number;
    if (pos > text.size() && raw.empty()) break;

    // Strip a # comment, but not inside a quoted string.
    bool in_string = false;
    std::size_t cut = raw.size();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '#') {
        cut = i;
        break;
      }
    }
    const std::string_view line = trim(raw.substr(0, cut));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        fail(line_number, "malformed section header");
        return result;
      }
      const std::string name(trim(line.substr(1, line.size() - 2)));
      if (name == "sweep") {
        in_sweep = true;
      } else if (name.empty() || !known_section(name)) {
        fail(line_number, "unknown section [" + name + "]");
        return result;
      } else {
        in_sweep = false;
        section = name;
      }
      if (!seen_sections.insert(in_sweep ? "sweep" : name).second) {
        fail(line_number, "duplicate section [" +
                              (in_sweep ? std::string("sweep") : name) + "]");
        return result;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(line_number, "expected `key = value` or a [section] header");
      return result;
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      fail(line_number, "missing key before '='");
      return result;
    }
    if (value.empty()) {
      fail(line_number, "missing value for key \"" + key + "\"");
      return result;
    }

    if (in_sweep) {
      // Axis: full dotted key, list of values. Validate each value by
      // applying it to a scratch spec through the shared setter.
      const FieldDef* f = find_field(key);
      if (f == nullptr) {
        fail(line_number, "unknown sweep axis key \"" + key + "\"");
        return result;
      }
      if (f->type == FieldType::kStringList) {
        fail(line_number, "sweep axis \"" + key +
                              "\" must be a scalar key (lists of lists are "
                              "not supported)");
        return result;
      }
      if (result_neutral(key)) {
        fail(line_number,
             "key \"" + key +
                 "\" cannot be a sweep axis: it does not affect results");
        return result;
      }
      if (!seen_axes.insert(key).second) {
        fail(line_number, "duplicate sweep axis \"" + key + "\"");
        return result;
      }
      std::vector<std::string> tokens;
      std::string err;
      if (!split_list(value, &tokens, &err)) {
        fail(line_number, "sweep axis \"" + key + "\": " + err);
        return result;
      }
      if (tokens.empty()) {
        fail(line_number, "sweep axis \"" + key + "\" has no values");
        return result;
      }
      SweepAxis axis;
      axis.key = key;
      for (const std::string& token : tokens) {
        std::string canonical;
        if (!set_key(scratch, key, token, &canonical, &err)) {
          fail(line_number, err);
          return result;
        }
        axis.values.push_back(std::move(canonical));
      }
      doc.axes.push_back(std::move(axis));
      continue;
    }

    const std::string full =
        section.empty() ? key : section + "." + key;
    if (!section.empty() && key.find('.') != std::string::npos) {
      fail(line_number, "unknown key \"" + full + "\"");
      return result;
    }
    const FieldDef* f = find_field(full);
    if (f == nullptr || (section.empty() && f->section[0] != '\0')) {
      fail(line_number, "unknown key \"" + full + "\"");
      return result;
    }
    if (!seen_keys.insert(full).second) {
      fail(line_number, "duplicate key \"" + full + "\"");
      return result;
    }
    std::string err;
    if (!set_key(doc.base, full, value, nullptr, &err)) {
      fail(line_number, err);
      return result;
    }
  }

  return result;
}

SpecParseResult load_spec_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SpecParseResult result;
    result.error = "spec: " + path + ": cannot open";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str(), path);
}

std::string canonical_text(const SpecDocument& doc) {
  std::string out;
  for (const char* section : kSections) {
    if (section[0] != '\0') {
      out += "\n[";
      out += section;
      out += "]\n";
    }
    for (const FieldDef& f : kFields) {
      if (std::strcmp(f.section, section) != 0) continue;
      out += f.key;
      out += " = ";
      out += get_field(doc.base, f);
      out += "\n";
    }
  }
  if (!doc.axes.empty()) {
    out += "\n[sweep]\n";
    for (const SweepAxis& axis : doc.axes) {
      out += axis.key;
      out += " = [";
      for (std::size_t i = 0; i < axis.values.size(); ++i) {
        if (i > 0) out += ", ";
        out += axis.values[i];
      }
      out += "]\n";
    }
  }
  return out;
}

std::string canonical_text(const CampaignSpec& spec) {
  SpecDocument doc;
  doc.base = spec;
  return canonical_text(doc);
}

std::string spec_hash(const CampaignSpec& spec) {
  CampaignSpec neutral = spec;
  neutral.campaign.threads = 0;
  neutral.outputs = OutputsSpec{};
  return hex64(fnv1a64(canonical_text(neutral)));
}

std::string document_hash(const SpecDocument& doc) {
  SpecDocument neutral = doc;
  neutral.base.campaign.threads = 0;
  neutral.base.outputs = OutputsSpec{};
  return hex64(fnv1a64(canonical_text(neutral)));
}

CampaignSpec paper_baseline_spec() {
  CampaignSpec spec;
  spec.name = "paper-baseline";
  return spec;  // WorldConfig/CampaignConfig defaults ARE the paper run.
}

void apply_env_overrides(CampaignSpec& spec) {
  if (const char* value = std::getenv("DOHPERF_SEED")) {
    spec.world.seed = static_cast<std::uint64_t>(std::atoll(value));
  }
  if (const char* value = std::getenv("DOHPERF_SCALE")) {
    const double scale = std::atof(value);
    if (scale > 0.0) spec.world.client_scale *= scale;
  }
  if (const char* value = std::getenv("DOHPERF_METRICS")) {
    spec.outputs.metrics_csv = value;
  }
  if (const char* value = std::getenv("DOHPERF_SERIES")) {
    spec.outputs.series_csv = value;
  }
  if (const char* value = std::getenv("DOHPERF_OPENMETRICS")) {
    spec.outputs.openmetrics = value;
  }
  if (const char* value = std::getenv("DOHPERF_ANOMALIES")) {
    spec.outputs.anomalies_dir = value;
  }
  if (const char* value = std::getenv("DOHPERF_SUMMARY")) {
    spec.outputs.summary_json = value;
  }
  if (const char* value = std::getenv("DOHPERF_ATTRIBUTION")) {
    spec.outputs.attribution_csv = value;
  }
}

}  // namespace dohperf::scenario
