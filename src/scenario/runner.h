// scenario::run — the single entry point that executes a CampaignSpec.
//
// Both sink modes, all observability surfaces, and every declared output
// funnel through here: benches, the campaign_run CLI, and the sweep
// driver all describe *what* to run as a spec and let the runner decide
// *how* (retained Dataset vs StreamSink, which files to produce). Every
// artifact the runner writes is stamped with the spec's content hash so
// it can be traced back to the exact scenario that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "measure/campaign.h"
#include "report/csv.h"
#include "scenario/spec.h"

namespace dohperf::scenario {

/// Everything scenario::run() produces. The sink payload matching
/// `spec.sink` is populated (`dataset` for kRetained, `sink` for
/// kStreaming); the other stays empty. Headline aggregates are computed
/// by the runner so result-shaping code never re-implements them.
struct RunResult {
  CampaignSpec spec;  ///< The spec as executed.
  std::string hash;   ///< spec_hash(spec).

  measure::CampaignStats stats;
  obs::Metrics metrics;
  obs::MetricSeries series;
  obs::FlightRecorder anomalies;
  obs::SloTracker slo;
  /// Phase-exact latency attribution ledger (merged across shards).
  obs::AttributionLedger attribution;
  /// Burn-rate alert events, evaluated post-merge when the spec's [slo]
  /// section is enabled (empty otherwise).
  std::vector<obs::SloAlert> slo_alerts;

  measure::Dataset dataset;  ///< Populated in retained mode.
  measure::StreamSink sink;  ///< Populated in streaming mode.

  /// Median DoH1 / Do53 across all rows: exact (type-7) medians in
  /// retained mode, sketch medians in streaming mode.
  double doh1_median_ms = 0.0;
  double do53_median_ms = 0.0;
  std::uint64_t failed_measurements = 0;
  std::uint64_t discarded_mismatch = 0;
  /// Data + handshake retransmits / exchanges that ran their budget dry
  /// (the fault-injection bench's headline counters).
  std::uint64_t retries = 0;
  std::uint64_t retry_timeouts = 0;

  /// Paths produced by write_outputs(), in write order.
  std::vector<std::string> written;
};

/// Runs `spec` against a caller-owned world (which must have been built
/// from `spec.world`; callers that sweep over campaign knobs reuse one
/// world across runs). Does not write outputs — see write_outputs().
[[nodiscard]] RunResult run(const CampaignSpec& spec,
                            world::WorldModel& world);

/// Builds the world from `spec.world`, then runs.
[[nodiscard]] RunResult run(const CampaignSpec& spec);

/// The figure 4 CDF series ("series,ms,cdf"; Do53 first, then per
/// provider DoH1 and DoHR in catalog order) — exact empirical CDFs from
/// the retained rows, sketch curves from a streaming sink. Formats match
/// bench/fig4_resolution_cdfs and the determinism suite byte-for-byte.
[[nodiscard]] report::CsvWriter fig4_csv(const measure::Dataset& data);
[[nodiscard]] report::CsvWriter fig4_csv(const measure::StreamSink& sink);

/// The figure 5 per-country DoH1 medians ("iso2,provider,median_doh1_ms"
/// over the analysis countries).
[[nodiscard]] report::CsvWriter fig5_csv(const measure::Dataset& data);
[[nodiscard]] report::CsvWriter fig5_csv(const measure::StreamSink& sink);

/// The "dohperf-scenario-summary-v1" JSON document for a finished run.
[[nodiscard]] std::string summary_json(const RunResult& result);

/// The one-line provenance stamp written at the top of every text
/// output ("# dohperf-spec name=<name> hash=<hash> sink=<sink>\n").
[[nodiscard]] std::string provenance_line(const RunResult& result);

/// Writes every output declared in `result.spec.outputs` (parent
/// directories created on demand), appending each produced path to
/// `result.written`. Throws std::runtime_error on I/O failure.
void write_outputs(RunResult& result);

}  // namespace dohperf::scenario
