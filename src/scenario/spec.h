// Declarative campaign scenarios: everything one run needs, as data.
//
// A CampaignSpec composes a WorldConfig, a CampaignConfig (faults,
// series window, anomaly policy, streaming-sink tuning included), the
// sink mode, and the set of outputs the run must produce. Specs have a
// human-writable text form — TOML-like `key = value` lines under
// `[section]` headers — parsed by a small strict parser in the style of
// obs::trace_load: any defect (unknown section, unknown or duplicate
// key, type mismatch, malformed value) yields exactly one line-numbered
// diagnostic and no spec, never a silent default. The same file may
// carry a `[sweep]` section whose axis lists expand into a spec grid
// (see sweep.h).
//
// Canonicalization: canonical_text() emits every key of every section
// in a fixed order with shortest-round-trip number formatting, and
// parse_spec(canonical_text(doc)) reproduces the document bit-exactly —
// doubles included. The canonical text is the identity of a spec: its
// FNV-1a 64 hash (spec_hash) is stamped into every output the run
// writes, so any artifact can be traced back to the exact scenario that
// produced it. Keys that cannot change results are excluded from the
// hash: `campaign.threads` (the campaign engine is bit-identical for
// every shard count) and the whole [outputs] section (paths, not
// content) — so one scenario keeps one hash wherever and however
// parallel it runs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "measure/campaign.h"
#include "world/world_model.h"

namespace dohperf::scenario {

/// Which sink mode scenario::run() drives the campaign engine with.
enum class SinkMode {
  kRetained,   ///< Every row resident (paper-scale analyses).
  kStreaming,  ///< Rows folded into sketches as sessions complete.
};

[[nodiscard]] std::string_view to_string(SinkMode mode);

/// Declared outputs of a run; empty string = not produced. Relative
/// paths resolve against the working directory; parent directories are
/// created on demand.
struct OutputsSpec {
  std::string summary_json;  ///< Schema-tagged JSON run summary.
  std::string fig4_csv;      ///< Resolution-time CDF series.
  std::string fig5_csv;      ///< Per-country DoH1 medians.
  std::string metrics_csv;   ///< Merged obs::Metrics registry.
  std::string series_csv;    ///< Sim-time metric series.
  std::string openmetrics;   ///< Series in OpenMetrics exposition.
  std::string anomalies_dir; ///< Flight-recorder dumps directory.
  std::string availability_csv;  ///< Per-(provider, country) SLO table.
  std::string slo_alerts_csv;    ///< Burn-rate alert events.
  std::string attribution_csv;   ///< Phase-exact latency attribution.
};

/// Everything one campaign run needs.
struct CampaignSpec {
  std::string name = "unnamed";
  SinkMode sink = SinkMode::kRetained;
  world::WorldConfig world;
  measure::CampaignConfig campaign;
  OutputsSpec outputs;
};

/// One sweep axis: a settable scalar key and the canonical value tokens
/// it steps through (see sweep.h for expansion).
struct SweepAxis {
  std::string key;                  ///< Dotted, e.g. "faults.loss_spike_probability".
  std::vector<std::string> values;  ///< Canonical tokens, in declared order.
};

/// A parsed spec file: the base spec plus any sweep axes.
struct SpecDocument {
  CampaignSpec base;
  std::vector<SweepAxis> axes;

  [[nodiscard]] bool is_sweep() const { return !axes.empty(); }
};

/// Either a document or a one-line diagnostic; never both.
struct SpecParseResult {
  SpecDocument doc;
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses spec text. `origin` labels diagnostics (a file path or
/// "<memory>").
[[nodiscard]] SpecParseResult parse_spec(std::string_view text,
                                         const std::string& origin);

/// Reads and parses `path`; unreadable files become diagnostics too.
[[nodiscard]] SpecParseResult load_spec_file(const std::string& path);

/// The canonical text form: every key of every section, fixed order,
/// shortest-round-trip numbers. parse_spec() of this text reproduces
/// the document bit-identically.
[[nodiscard]] std::string canonical_text(const SpecDocument& doc);
[[nodiscard]] std::string canonical_text(const CampaignSpec& spec);

/// Content hash of the spec: FNV-1a 64 over the canonical text with
/// `campaign.threads` zeroed and [outputs] cleared (neither can change
/// results), printed as 16 lowercase hex digits.
[[nodiscard]] std::string spec_hash(const CampaignSpec& spec);

/// Content hash of a whole document (sweep axes included; same
/// result-neutral keys excluded).
[[nodiscard]] std::string document_hash(const SpecDocument& doc);

/// Sets one scalar key ("name", "world.seed", "faults.spike_extra_loss",
/// ...) from its raw value text exactly as the parser would. On success
/// returns true and, when `canonical` is non-null, stores the canonical
/// token of the stored value. On failure returns false and stores a
/// diagnostic (without location prefix) in `*error`.
bool set_key(CampaignSpec& spec, const std::string& dotted_key,
             std::string_view value_text, std::string* canonical,
             std::string* error);

/// Shortest decimal form of `v` that strtod parses back bit-identically.
[[nodiscard]] std::string format_double(double v);

/// The paper-scale baseline scenario (world + campaign defaults,
/// retained sink, no outputs declared).
[[nodiscard]] CampaignSpec paper_baseline_spec();

/// Applies the DOHPERF_* environment to a spec, making env vars spec
/// overrides rather than a parallel configuration channel:
///   DOHPERF_SEED         -> world.seed
///   DOHPERF_SCALE        -> world.client_scale multiplier (a spec that
///                           says 0.25 runs at 0.25 x env scale)
///   DOHPERF_METRICS      -> outputs.metrics_csv
///   DOHPERF_SERIES       -> outputs.series_csv
///   DOHPERF_OPENMETRICS  -> outputs.openmetrics
///   DOHPERF_ANOMALIES    -> outputs.anomalies_dir
///   DOHPERF_SUMMARY      -> outputs.summary_json
///   DOHPERF_ATTRIBUTION  -> outputs.attribution_csv
/// DOHPERF_THREADS needs no mapping: campaign.threads = 0 already means
/// "take it from the environment" (Campaign::threads_from_env).
void apply_env_overrides(CampaignSpec& spec);

}  // namespace dohperf::scenario
