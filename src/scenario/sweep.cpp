#include "scenario/sweep.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.h"

namespace dohperf::scenario {
namespace {

std::string cell_stem(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "cell-%03zu", index);
  return buf;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return static_cast<bool>(out);
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string self_exe() {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string() : exe.string();
}

/// Strips trailing whitespace so a spliced JSON object sits cleanly
/// inside the report's cells array.
std::string_view trimmed(const std::string& s) {
  std::string_view v = s;
  while (!v.empty() && (v.back() == '\n' || v.back() == '\r' ||
                        v.back() == ' ' || v.back() == '\t')) {
    v.remove_suffix(1);
  }
  return v;
}

}  // namespace

std::vector<SweepCell> expand(const SpecDocument& doc) {
  std::size_t total = 1;
  for (const SweepAxis& axis : doc.axes) total *= axis.values.size();

  std::vector<SweepCell> cells;
  cells.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    SweepCell cell;
    cell.index = index;
    cell.spec = doc.base;
    // Row-major: the first declared axis varies slowest.
    std::size_t remainder = index;
    std::size_t block = total;
    for (const SweepAxis& axis : doc.axes) {
      block /= axis.values.size();
      const std::size_t pick = remainder / block;
      remainder %= block;
      const std::string& token = axis.values[pick];
      std::string error;
      if (!set_key(cell.spec, axis.key, token, nullptr, &error)) {
        // Unreachable: tokens are canonical forms validated at parse
        // time. Fail loudly rather than run a half-applied cell.
        std::fprintf(stderr, "scenario: sweep expansion bug: %s\n",
                     error.c_str());
        std::abort();
      }
      cell.assignment.emplace_back(axis.key, token);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

int processes_from_env() {
  const char* value = std::getenv("DOHPERF_SWEEP_PROCS");
  if (value == nullptr) return 1;
  const int procs = std::atoi(value);
  return procs > 0 ? procs : 1;
}

bool run_sweep(const SpecDocument& doc, const SweepOptions& options,
               const std::string& report_path, std::string* error) {
  const std::vector<SweepCell> cells = expand(doc);
  const int procs = options.processes > 0 ? options.processes
                                          : processes_from_env();
  const std::string runner =
      options.runner.empty() ? self_exe() : options.runner;
  if (runner.empty()) {
    *error = "sweep: cannot resolve the worker binary (/proc/self/exe)";
    return false;
  }

  std::error_code ec;
  std::filesystem::create_directories(options.work_dir, ec);

  // Write every cell spec up front: the cell's summary path is its only
  // declared output; everything else the base spec declared would
  // collide across cells.
  std::vector<std::string> spec_paths(cells.size());
  std::vector<std::string> summary_paths(cells.size());
  for (const SweepCell& cell : cells) {
    const std::string stem =
        (std::filesystem::path(options.work_dir) / cell_stem(cell.index))
            .string();
    spec_paths[cell.index] = stem + ".spec";
    summary_paths[cell.index] = stem + ".json";
    CampaignSpec spec = cell.spec;
    spec.outputs = OutputsSpec{};
    spec.outputs.summary_json = summary_paths[cell.index];
    if (!write_file(spec_paths[cell.index], canonical_text(spec))) {
      *error = "sweep: cannot write " + spec_paths[cell.index];
      return false;
    }
  }

  // Fork/exec pool: at most `procs` children in flight; each runs one
  // cell with env overrides disabled (the parent already resolved the
  // final spec — an inherited DOHPERF_SCALE must not apply twice).
  std::map<pid_t, std::size_t> running;
  std::size_t next = 0;
  std::size_t failures = 0;
  while (next < cells.size() || !running.empty()) {
    while (running.size() < static_cast<std::size_t>(procs) &&
           next < cells.size()) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        *error = "sweep: fork failed";
        return false;
      }
      if (pid == 0) {
        ::execl(runner.c_str(), runner.c_str(), "--no-env",
                spec_paths[next].c_str(), static_cast<char*>(nullptr));
        std::fprintf(stderr, "sweep: cannot exec %s\n", runner.c_str());
        ::_exit(127);
      }
      running.emplace(pid, next);
      ++next;
    }
    int status = 0;
    const pid_t done = ::waitpid(-1, &status, 0);
    if (done < 0) {
      *error = "sweep: waitpid failed";
      return false;
    }
    const auto it = running.find(done);
    if (it == running.end()) continue;
    const std::size_t cell = it->second;
    running.erase(it);
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "sweep: cell %zu failed (%s)\n", cell,
                   spec_paths[cell].c_str());
    }
  }
  if (failures > 0) {
    *error = "sweep: " + std::to_string(failures) + " of " +
             std::to_string(cells.size()) + " cell(s) failed";
    return false;
  }

  // Merge: validate each child summary parses as a JSON object with the
  // expected schema tag, then splice it verbatim into the report.
  std::string report = "{\n  \"schema\": \"dohperf-sweep-v1\",\n";
  report += "  \"name\": \"" + doc.base.name + "\",\n";
  report += "  \"document_hash\": \"" + document_hash(doc) + "\",\n";
  report += "  \"axes\": [\n";
  for (std::size_t i = 0; i < doc.axes.size(); ++i) {
    const SweepAxis& axis = doc.axes[i];
    report += "    {\"key\": \"" + axis.key + "\", \"values\": [";
    for (std::size_t v = 0; v < axis.values.size(); ++v) {
      if (v > 0) report += ", ";
      report += axis.values[v];
    }
    report += "]}";
    report += i + 1 < doc.axes.size() ? ",\n" : "\n";
  }
  report += "  ],\n  \"cells\": [\n";
  for (const SweepCell& cell : cells) {
    std::string summary;
    if (!read_file(summary_paths[cell.index], &summary)) {
      *error = "sweep: cell " + std::to_string(cell.index) +
               " wrote no summary (" + summary_paths[cell.index] + ")";
      return false;
    }
    const auto parsed = obs::json::parse(summary);
    if (!parsed.has_value() || !parsed->is_object() ||
        parsed->string_or("schema", "") != "dohperf-scenario-summary-v1") {
      *error = "sweep: cell " + std::to_string(cell.index) +
               " summary is not a dohperf-scenario-summary-v1 document";
      return false;
    }
    report += "    {\"cell\": " + std::to_string(cell.index) +
              ", \"axes\": {";
    for (std::size_t a = 0; a < cell.assignment.size(); ++a) {
      if (a > 0) report += ", ";
      report += "\"" + cell.assignment[a].first +
                "\": " + cell.assignment[a].second;
    }
    report += "}, \"summary\": ";
    report += trimmed(summary);
    report += "}";
    report += cell.index + 1 < cells.size() ? ",\n" : "\n";
  }
  report += "  ]\n}\n";

  const std::filesystem::path parent =
      std::filesystem::path(report_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  if (!write_file(report_path, report)) {
    *error = "sweep: cannot write " + report_path;
    return false;
  }
  return true;
}

}  // namespace dohperf::scenario
