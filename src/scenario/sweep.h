// scenario::Sweep — expand a spec document's [sweep] axes into a grid
// of concrete CampaignSpecs and execute it in worker *processes*.
//
// Each cell is one fully-resolved spec: the base with one value from
// every axis applied (row-major, first axis slowest). Execution
// fork/execs the campaign_run CLI per cell — process isolation means a
// cell's allocator/RSS state cannot leak into its neighbours' numbers
// and a crash loses one cell, not the sweep. The default is one worker
// at a time (the container this grew up in has a single CPU);
// DOHPERF_SWEEP_PROCS or SweepOptions::processes raises it.
//
// Cell summaries ("dohperf-scenario-summary-v1" JSON, written by each
// child) are merged into one "dohperf-sweep-v1" report validated by
// tools/bench_schema_check.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.h"

namespace dohperf::scenario {

/// One expanded grid cell.
struct SweepCell {
  std::size_t index = 0;
  /// (axis key, canonical value token) in axis declaration order.
  std::vector<std::pair<std::string, std::string>> assignment;
  CampaignSpec spec;  ///< Base spec with the assignment applied.
};

/// Expands axes into the full grid, row-major with the first declared
/// axis varying slowest. A document with no axes yields one cell (the
/// base spec). Axis values were validated at parse time, so expansion
/// cannot fail.
[[nodiscard]] std::vector<SweepCell> expand(const SpecDocument& doc);

/// DOHPERF_SWEEP_PROCS from the environment (minimum 1; default 1 —
/// serial, respecting single-CPU containers).
[[nodiscard]] int processes_from_env();

struct SweepOptions {
  /// Worker binary fork/exec'd per cell (invoked as
  /// `<runner> --no-env <cell.spec>`). Empty = this executable
  /// (/proc/self/exe), which is how campaign_run re-enters itself.
  std::string runner;
  /// Directory for per-cell spec files and summaries (created on
  /// demand).
  std::string work_dir = "out/sweep";
  /// Concurrent worker processes; 0 = processes_from_env().
  int processes = 0;
};

/// Runs every cell of `doc` and writes the merged "dohperf-sweep-v1"
/// report to `report_path`. Returns true on success; on failure (a cell
/// exiting nonzero, an unwritable work dir, a malformed child summary)
/// stores one diagnostic in `*error` and returns false.
bool run_sweep(const SpecDocument& doc, const SweepOptions& options,
               const std::string& report_path, std::string* error);

}  // namespace dohperf::scenario
