#include "scenario/runner.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "anycast/catalog.h"
#include "obs/proc_stats.h"
#include "report/anomalies.h"
#include "report/attribution.h"
#include "report/metrics.h"
#include "report/slo.h"
#include "report/table.h"
#include "report/timeseries.h"
#include "stats/cdf.h"
#include "stats/summary.h"

namespace dohperf::scenario {
namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void write_text(const std::string& path, const std::string& content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best-effort
  }
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    throw std::runtime_error("scenario: cannot write " + path);
  }
}

double median_of(std::vector<double> values) {
  return values.empty() ? 0.0 : stats::median_inplace(values);
}

}  // namespace

RunResult run(const CampaignSpec& spec, world::WorldModel& world) {
  RunResult result;
  result.spec = spec;
  result.hash = spec_hash(spec);

  measure::Campaign campaign(world, spec.campaign);
  if (spec.sink == SinkMode::kRetained) {
    result.dataset = campaign.run();
    result.failed_measurements = result.dataset.failed_measurements;
    result.discarded_mismatch = result.dataset.discarded_mismatch;
    result.doh1_median_ms = median_of(result.dataset.tdoh_values());
    result.do53_median_ms = median_of(result.dataset.do53_values());
  } else {
    result.sink = campaign.run_streaming();
    result.failed_measurements = result.sink.failed_measurements();
    result.discarded_mismatch = result.sink.discarded_mismatch;
    result.doh1_median_ms = result.sink.tdoh_sketch().quantile(0.5);
    result.do53_median_ms = result.sink.do53_sketch().quantile(0.5);
  }
  result.stats = campaign.stats();
  result.metrics = campaign.metrics();
  result.series = campaign.series();
  result.anomalies = campaign.anomalies();
  result.slo = campaign.slo();
  result.attribution = campaign.attribution();
  if (spec.campaign.slo.enabled) {
    result.slo_alerts = result.slo.evaluate();
  }
  result.retries = result.metrics.counters.loss_retries +
                   result.metrics.counters.handshake_retries;
  result.retry_timeouts = result.metrics.counters.retry_timeouts;
  return result;
}

RunResult run(const CampaignSpec& spec) {
  world::WorldModel world(spec.world);
  return run(spec, world);
}

report::CsvWriter fig4_csv(const measure::Dataset& data) {
  report::CsvWriter csv({"series", "ms", "cdf"});
  const auto dump = [&csv](const std::string& name,
                           const stats::EmpiricalCdf& cdf) {
    for (const auto& [value, fraction] : cdf.curve(50)) {
      csv.add_row({name, report::fmt(value, 1), report::fmt(fraction, 3)});
    }
  };
  dump("Do53", stats::EmpiricalCdf(data.do53_values()));
  for (const char* provider : anycast::kProviderNames) {
    dump(std::string(provider) + "-DoH1",
         stats::EmpiricalCdf(data.tdoh_values(provider)));
    dump(std::string(provider) + "-DoHR",
         stats::EmpiricalCdf(data.tdohr_values(provider)));
  }
  return csv;
}

report::CsvWriter fig4_csv(const measure::StreamSink& sink) {
  report::CsvWriter csv({"series", "ms", "cdf"});
  const auto dump = [&csv](const std::string& name,
                           const stats::QuantileSketch& sketch) {
    for (const auto& [value, fraction] : sketch.curve(50)) {
      csv.add_row({name, report::fmt(value, 1), report::fmt(fraction, 3)});
    }
  };
  dump("Do53", sink.do53_sketch());
  for (const char* provider : anycast::kProviderNames) {
    dump(std::string(provider) + "-DoH1", sink.tdoh_sketch(provider));
    dump(std::string(provider) + "-DoHR", sink.tdohr_sketch(provider));
  }
  return csv;
}

report::CsvWriter fig5_csv(const measure::Dataset& data) {
  report::CsvWriter csv({"iso2", "provider", "median_doh1_ms"});
  const auto analysis = data.analysis_countries(10);
  for (const char* provider : anycast::kProviderNames) {
    const auto medians = data.country_doh_medians(provider, 1);
    for (const auto& iso2 : analysis) {
      if (const auto it = medians.find(iso2); it != medians.end()) {
        csv.add_row({iso2, provider, report::fmt(it->second, 1)});
      }
    }
  }
  return csv;
}

report::CsvWriter fig5_csv(const measure::StreamSink& sink) {
  report::CsvWriter csv({"iso2", "provider", "median_doh1_ms"});
  const auto analysis = sink.analysis_countries(10);
  for (const char* provider : anycast::kProviderNames) {
    const auto medians = sink.country_doh1_medians(provider);
    for (const auto& iso2 : analysis) {
      if (const auto it = medians.find(iso2); it != medians.end()) {
        csv.add_row({iso2, provider, report::fmt(it->second, 1)});
      }
    }
  }
  return csv;
}

std::string summary_json(const RunResult& result) {
  const CampaignSpec& spec = result.spec;
  std::string out = "{\n  \"schema\": \"dohperf-scenario-summary-v1\",\n";
  out += "  \"name\": ";
  append_json_string(out, spec.name);
  out += ",\n  \"spec_hash\": ";
  append_json_string(out, result.hash);
  out += ",\n  \"sink\": ";
  append_json_string(out, to_string(spec.sink));
  out += ",\n  \"world\": {\"seed\": " + std::to_string(spec.world.seed) +
         ", \"client_scale\": " + format_double(spec.world.client_scale) +
         "},\n";
  out += "  \"campaign\": {\"runs_per_client\": " +
         std::to_string(spec.campaign.runs_per_client) +
         ", \"atlas_measurements_per_country\": " +
         std::to_string(spec.campaign.atlas_measurements_per_country) +
         "},\n";
  out += "  \"sessions\": " + std::to_string(result.stats.sessions) + ",\n";
  out += "  \"shards\": " + std::to_string(result.stats.shards) + ",\n";
  out += "  \"events\": " + std::to_string(result.stats.events_processed) +
         ",\n";
  out += "  \"wall_seconds\": " + format_double(result.stats.wall_seconds) +
         ",\n";
  out += "  \"doh1_median_ms\": " + format_double(result.doh1_median_ms) +
         ",\n";
  out += "  \"do53_median_ms\": " + format_double(result.do53_median_ms) +
         ",\n";
  out += "  \"retries\": " + std::to_string(result.retries) + ",\n";
  out += "  \"retry_timeouts\": " + std::to_string(result.retry_timeouts) +
         ",\n";
  out += "  \"failed_measurements\": " +
         std::to_string(result.failed_measurements) + ",\n";
  out += "  \"discarded_mismatch\": " +
         std::to_string(result.discarded_mismatch) + ",\n";
  out += "  \"peak_rss_bytes\": " + std::to_string(obs::peak_rss_bytes()) +
         ",\n";
  if (spec.campaign.slo.enabled) {
    out += "  \"slo\": {\"availability_objective\": " +
           format_double(spec.campaign.slo.availability_objective) +
           ", \"alerts\": " + std::to_string(result.slo_alerts.size()) +
           ", \"providers\": [";
    bool first_provider = true;
    for (const auto& [key, budget] : result.slo.budgets()) {
      if (!key.country.empty()) continue;  // Aggregates only.
      if (!first_provider) out += ", ";
      first_provider = false;
      out += "{\"provider\": ";
      append_json_string(out, key.provider);
      out += ", \"total\": " + std::to_string(budget.total) +
             ", \"errors\": " + std::to_string(budget.errors) +
             ", \"availability\": " + format_double(budget.availability) +
             ", \"error_budget_consumed\": " +
             format_double(budget.error_budget_consumed) + "}";
    }
    out += "]},\n";
  }
  out += "  \"outputs\": [";
  bool first = true;
  for (const std::string& path : result.written) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, path);
  }
  out += "]\n}\n";
  return out;
}

std::string provenance_line(const RunResult& result) {
  std::string line = "# dohperf-spec name=";
  line += result.spec.name;
  line += " hash=";
  line += result.hash;
  line += " sink=";
  line += to_string(result.spec.sink);
  line += "\n";
  return line;
}

void write_outputs(RunResult& result) {
  const OutputsSpec& outputs = result.spec.outputs;
  const std::string stamp = provenance_line(result);

  const auto emit_csv = [&](const std::string& path,
                            const report::CsvWriter& csv) {
    write_text(path, stamp + csv.str());
    result.written.push_back(path);
  };

  if (!outputs.fig4_csv.empty()) {
    emit_csv(outputs.fig4_csv, result.spec.sink == SinkMode::kRetained
                                   ? fig4_csv(result.dataset)
                                   : fig4_csv(result.sink));
  }
  if (!outputs.fig5_csv.empty()) {
    emit_csv(outputs.fig5_csv, result.spec.sink == SinkMode::kRetained
                                   ? fig5_csv(result.dataset)
                                   : fig5_csv(result.sink));
  }
  if (!outputs.metrics_csv.empty()) {
    emit_csv(outputs.metrics_csv, report::metrics_csv(result.metrics));
  }
  if (!outputs.series_csv.empty()) {
    emit_csv(outputs.series_csv, report::timeseries_csv(result.series));
  }
  if (!outputs.availability_csv.empty()) {
    emit_csv(outputs.availability_csv, report::availability_csv(result.slo));
  }
  if (!outputs.slo_alerts_csv.empty()) {
    emit_csv(outputs.slo_alerts_csv,
             report::slo_alerts_csv(result.slo_alerts));
  }
  if (!outputs.attribution_csv.empty()) {
    emit_csv(outputs.attribution_csv,
             report::attribution_csv(result.attribution));
  }
  if (!outputs.openmetrics.empty()) {
    std::string om = report::openmetrics_text(result.series);
    // Extra gauge blocks join the series exposition inside the same
    // document frame (before "# EOF").
    std::string gauges;
    if (result.spec.campaign.slo.enabled) {
      gauges += report::slo_openmetrics_text(result.slo);
    }
    if (!result.attribution.empty()) {
      gauges += report::attribution_openmetrics_text(result.attribution);
    }
    if (!gauges.empty()) {
      const std::size_t eof = om.rfind("# EOF\n");
      if (eof != std::string::npos) {
        om.insert(eof, gauges);
      } else {
        om += gauges;
      }
    }
    write_text(outputs.openmetrics, stamp + om);
    result.written.push_back(outputs.openmetrics);
  }
  if (!outputs.anomalies_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(outputs.anomalies_dir, ec);
    const std::size_t dumps =
        report::write_anomaly_dumps(result.anomalies, outputs.anomalies_dir);
    write_text((std::filesystem::path(outputs.anomalies_dir) / "spec.txt")
                   .string(),
               stamp + canonical_text(result.spec));
    std::fprintf(stderr, "anomalies: %zu flow dump(s) -> %s\n", dumps,
                 outputs.anomalies_dir.c_str());
    result.written.push_back(outputs.anomalies_dir);
  }
  // The summary goes last so its "outputs" array lists everything else
  // this run produced.
  if (!outputs.summary_json.empty()) {
    write_text(outputs.summary_json, summary_json(result));
    result.written.push_back(outputs.summary_json);
  }
}

}  // namespace dohperf::scenario
