// A caching recursive resolver.
//
// Serves two roles in the study: (1) the per-country "default" (ISP)
// resolver used by Do53 measurements, and (2) the backend resolver behind
// each DoH point-of-presence. Because every measured name is a fresh
// <UUID>.a.com, measured queries always miss the cache and recurse to the
// authoritative server — the paper's deliberate worst-case design.
#pragma once

#include <cstdint>
#include <string>

#include "dns/cache.h"
#include "dns/message.h"
#include "netsim/netctx.h"
#include "resolver/authoritative.h"

namespace dohperf::resolver {

/// Resolver statistics.
struct ResolverStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t negative_hits = 0;
  std::uint64_t recursions = 0;
  std::uint64_t failures = 0;
};

/// Whether the resolver forwards EDNS Client Subnet upstream (RFC 7871).
/// Providers differ: Google forwards a truncated /24; Cloudflare refuses
/// on privacy grounds.
enum class EcsPolicy {
  kNever,
  kForwardSlash24,
};

/// A recursive resolver at a fixed network site.
class RecursiveResolver {
 public:
  /// `address` identifies this resolver at the authoritative server.
  /// `processing` is the per-query server-side delay.
  /// `processing` is charged on cache misses (full recursion work);
  /// cache hits cost a tenth of it plus a small constant — hot-name
  /// lookups are served from the frontend cache even on loaded boxes.
  RecursiveResolver(std::string name, netsim::Site site,
                    std::uint32_t address, AuthoritativeServer* authority,
                    netsim::Duration processing = netsim::from_ms(0.5));

  /// Resolves `query`, consulting the positive and negative caches and
  /// recursing over the network on a miss. `client_address` (host-order
  /// IPv4, 0 = unknown) feeds the ECS policy; the address itself is
  /// truncated to /24 before it leaves this resolver.
  [[nodiscard]] netsim::Task<dns::Message> resolve(
      netsim::NetCtx& net, dns::Message query,
      std::uint32_t client_address = 0);

  void set_ecs_policy(EcsPolicy policy) { ecs_policy_ = policy; }
  [[nodiscard]] EcsPolicy ecs_policy() const { return ecs_policy_; }

  [[nodiscard]] const netsim::Site& site() const { return site_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t address() const { return address_; }
  [[nodiscard]] const ResolverStats& stats() const { return stats_; }
  [[nodiscard]] dns::Cache& cache() { return cache_; }

  /// Server-side delay of a frontend-cache hit (what resolve() charges on
  /// its hit path). Exposed so warm-path models that price hits without
  /// touching resolver state stay consistent with the real hit path.
  [[nodiscard]] netsim::Duration cache_hit_cost() const {
    return netsim::from_ms(0.5) + processing_ / 10;
  }

 private:
  std::string name_;
  netsim::Site site_;
  std::uint32_t address_;
  AuthoritativeServer* authority_;  ///< Non-owning; outlives the resolver.
  netsim::Duration processing_;
  dns::Cache cache_;
  dns::Cache negative_cache_;  ///< NXDOMAIN denials (RFC 2308).
  dns::Cache nodata_cache_;    ///< NODATA denials (RFC 2308 section 2.2).
  EcsPolicy ecs_policy_ = EcsPolicy::kNever;
  ResolverStats stats_;
};

}  // namespace dohperf::resolver
