#include "resolver/authoritative.h"

#include <utility>

#include "dns/ecs.h"

namespace dohperf::resolver {

AuthoritativeServer::AuthoritativeServer(dns::Zone zone, netsim::Site site,
                                         netsim::Duration processing)
    : zone_(std::move(zone)), site_(site), processing_(processing) {}

dns::Message AuthoritativeServer::handle(const dns::Message& query,
                                         std::uint32_t from_resolver) {
  ++query_count_;
  seen_resolvers_.insert(from_resolver);
  // Count ECS presence; deliberately discard the carried prefix.
  if (dns::extract_ecs(query).has_value()) ++ecs_query_count_;

  if (query.questions.empty()) {
    return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  const dns::Question& q = query.questions.front();
  const dns::ZoneLookup result = zone_.lookup(q.name, q.type);

  dns::Message resp = dns::Message::make_response(query, result.rcode);
  resp.header.aa = true;
  resp.header.ra = false;  // authoritative servers do not recurse
  resp.answers = result.answers;
  resp.authorities = result.authorities;
  return resp;
}

}  // namespace dohperf::resolver
