#include "resolver/recursive.h"

#include <chrono>
#include <utility>

#include "dns/ecs.h"
#include "dns/wire.h"
#include "netsim/path.h"
#include "transport/connection.h"

namespace dohperf::resolver {

RecursiveResolver::RecursiveResolver(std::string name, netsim::Site site,
                                     std::uint32_t address,
                                     AuthoritativeServer* authority,
                                     netsim::Duration processing)
    : name_(std::move(name)),
      site_(site),
      address_(address),
      authority_(authority),
      processing_(processing) {}

netsim::Task<dns::Message> RecursiveResolver::resolve(
    netsim::NetCtx& net, dns::Message query, std::uint32_t client_address) {
  ++stats_.queries;
  const obs::ScopedSpan span = net.span("recursive_resolve");
  // Provisionally a miss (the common cache-buster case); every hit
  // branch relabels the live frames — this one and any stub_resolve
  // frame beneath — so the whole resolution path carries the outcome.
  const obs::ScopedPhase attr = net.phase(obs::Phase::kDnsCacheMiss);

  if (query.questions.empty()) {
    ++stats_.failures;
    co_return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  const dns::Question q = query.questions.front();

  if (auto cached = cache_.lookup(net.sim.now(), q.name, q.type)) {
    ++stats_.cache_hits;
    net.attribution.relabel_open(obs::Phase::kDnsCacheMiss,
                                 obs::Phase::kDnsCacheHit);
    // Hot-name hits are served from the frontend cache: cheap unless a
    // brownout episode has the whole frontend overloaded.
    co_await net.process_at(site_, cache_hit_cost());
    dns::Message resp = dns::Message::make_response(query);
    resp.answers = std::move(*cached);
    co_return resp;
  }

  // Negative caches (RFC 2308): a recent NXDOMAIN or NODATA answers
  // immediately with the cached SOA and the original rcode.
  if (auto negative =
          negative_cache_.lookup(net.sim.now(), q.name, q.type)) {
    ++stats_.negative_hits;
    net.attribution.relabel_open(obs::Phase::kDnsCacheMiss,
                                 obs::Phase::kDnsCacheHit);
    co_await net.process_at(site_, cache_hit_cost());
    dns::Message resp =
        dns::Message::make_response(query, dns::Rcode::kNxDomain);
    resp.authorities = std::move(*negative);
    co_return resp;
  }
  if (auto nodata = nodata_cache_.lookup(net.sim.now(), q.name, q.type)) {
    ++stats_.negative_hits;
    net.attribution.relabel_open(obs::Phase::kDnsCacheMiss,
                                 obs::Phase::kDnsCacheHit);
    co_await net.process_at(site_, cache_hit_cost());
    dns::Message resp = dns::Message::make_response(query);
    resp.authorities = std::move(*nodata);
    co_return resp;
  }

  ++stats_.recursions;
  co_await net.process_at(site_, processing_);
  // Forward the query to the authoritative server as real wire bytes.
  dns::Message upstream = dns::Message::make_query(query.header.id, q.name,
                                                   q.type);
  if (ecs_policy_ == EcsPolicy::kForwardSlash24 && client_address != 0) {
    dns::attach_ecs(upstream, dns::make_ecs_option(client_address, 24));
  }
  netsim::Path authority_path(net, site_, authority_->site());
  authority_path.set_framing(transport::kUdpOverheadBytes,
                             transport::kUdpOverheadBytes);
  // Lost upstream datagrams retry on an ~800 ms exponential timer; an
  // unreachable authority becomes SERVFAIL after the schedule runs dry.
  const netsim::RetryOutcome upstream_delivery =
      co_await authority_path.deliver_with_retry(
          {std::chrono::milliseconds(800), 4});
  if (!upstream_delivery.delivered) {
    ++stats_.failures;
    co_return dns::Message::make_response(query, dns::Rcode::kServFail);
  }
  co_await authority_path.send(dns::wire_size(upstream));

  co_await net.process_at(authority_->site(),
                          authority_->processing_delay());
  dns::Message auth_resp = authority_->handle(upstream, address_);

  co_await authority_path.recv(dns::wire_size(auth_resp));

  if (auth_resp.header.rcode == dns::Rcode::kNoError &&
      !auth_resp.answers.empty()) {
    cache_.insert(net.sim.now(), q.name, q.type, auth_resp.answers);
  } else if (auth_resp.header.rcode == dns::Rcode::kNxDomain &&
             !auth_resp.authorities.empty()) {
    // Cache the denial for the SOA minimum (RFC 2308).
    negative_cache_.insert(net.sim.now(), q.name, q.type,
                           auth_resp.authorities);
    ++stats_.failures;
  } else if (auth_resp.header.rcode == dns::Rcode::kNoError &&
             auth_resp.answers.empty() &&
             !auth_resp.authorities.empty()) {
    // NODATA is negatively cacheable too (RFC 2308 section 2.2); the
    // SOA's minimum bounds the lifetime exactly as for NXDOMAIN.
    nodata_cache_.insert(net.sim.now(), q.name, q.type,
                         auth_resp.authorities);
  } else if (auth_resp.header.rcode != dns::Rcode::kNoError) {
    ++stats_.failures;
  }

  dns::Message resp = dns::Message::make_response(query,
                                                  auth_resp.header.rcode);
  resp.answers = auth_resp.answers;
  resp.authorities = auth_resp.authorities;
  co_return resp;
}

}  // namespace dohperf::resolver
