// DoH front-end (RFC 8484 GET binding) over a recursive resolver.
//
// One DohServer instance runs at each provider point-of-presence; the
// backend recursive resolver is co-located with it, so the PoP -> a.com
// authoritative leg travels on the provider's backbone site parameters.
#pragma once

#include <cstdint>
#include <string>

#include "netsim/netctx.h"
#include "resolver/recursive.h"
#include "transport/http.h"

namespace dohperf::resolver {

/// Handles "GET /dns-query?dns=<base64url>" requests.
///
/// The HTTPS front-end (`frontend_site`) is where clients terminate TCP
/// and TLS — providers onboard clients near the edge, so its route
/// inflation is low. The backend recursive resolver keeps its own site
/// whose inflation reflects the long-haul transit its upstream queries
/// actually ride.
class DohServer {
 public:
  DohServer(std::string hostname, netsim::Site frontend_site,
            RecursiveResolver resolver);

  /// Parses the HTTP request (RFC 8484 GET ?dns= or POST body), resolves
  /// the carried DNS query, and returns an HTTP response with an
  /// application/dns-message body. Malformed requests yield 400 without
  /// touching the resolver. `client_address` (host-order IPv4, 0 =
  /// unknown) feeds the backend resolver's ECS policy.
  [[nodiscard]] netsim::Task<transport::HttpResponse> handle(
      netsim::NetCtx& net, transport::HttpRequest request,
      std::uint32_t client_address = 0);

  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  /// The TLS-terminating front-end clients talk to.
  [[nodiscard]] const netsim::Site& site() const { return frontend_site_; }
  [[nodiscard]] RecursiveResolver& resolver() { return resolver_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  std::string hostname_;
  netsim::Site frontend_site_;
  RecursiveResolver resolver_;
  std::uint64_t served_ = 0;
};

}  // namespace dohperf::resolver
