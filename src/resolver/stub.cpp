#include "resolver/stub.h"

#include <cstdio>

#include <chrono>

#include "dns/wire.h"
#include "netsim/path.h"
#include "transport/base64.h"
#include "transport/connection.h"

namespace dohperf::resolver {

netsim::Task<StubResult> stub_resolve(netsim::NetCtx& net,
                                      const netsim::Site& vantage,
                                      RecursiveResolver& resolver,
                                      dns::Message query,
                                      std::uint32_t client_address) {
  StubResult result;
  const obs::ScopedSpan span = net.span("stub_resolve");
  // Provisionally a miss; the recursive resolver relabels every live
  // dns_cache_miss frame to dns_cache_hit when its cache answers.
  const obs::ScopedPhase attr = net.phase(obs::Phase::kDnsCacheMiss);
  if (net.metrics != nullptr) ++net.metrics->counters.dns_queries;
  const netsim::SimTime start = net.sim.now();
  netsim::Path path(net, vantage, resolver.site());
  path.set_framing(transport::kUdpOverheadBytes,
                   transport::kUdpOverheadBytes);
  // Lost UDP datagrams are retransmitted on an exponential timer — the
  // classic Do53 tail. A dead path (blackout episode) exhausts the
  // schedule and surfaces as a timeout the caller can observe.
  const netsim::RetryOutcome delivery =
      co_await path.deliver_with_retry(kStubRetryPolicy);
  result.retransmits = delivery.retransmits;
  if (!delivery.delivered) {
    result.timed_out = true;
    result.elapsed_ms = netsim::ms_between(start, net.sim.now());
    co_return result;
  }
  const std::size_t query_size = dns::wire_size(query);
  co_await path.send(query_size);
  const dns::Message resp =
      co_await resolver.resolve(net, std::move(query), client_address);
  co_await path.recv(dns::wire_size(resp));
  result.rcode = resp.header.rcode;
  result.elapsed_ms = netsim::ms_between(start, net.sim.now());
  co_return result;
}

std::string uuid_label(netsim::Rng& rng) {
  const std::uint64_t hi = rng.next();
  const std::uint64_t lo = rng.next();
  char buf[40];
  // Version/variant bits set per RFC 4122 for cosmetic fidelity.
  std::snprintf(buf, sizeof buf,
                "%08x-%04x-4%03x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xFFFF),
                static_cast<unsigned>(hi & 0x0FFF),
                static_cast<unsigned>(0x8000 | ((lo >> 48) & 0x3FFF)),
                static_cast<unsigned long long>(lo & 0xFFFFFFFFFFFFULL));
  return buf;
}

dns::Message make_probe_query(netsim::Rng& rng,
                              const dns::DomainName& origin) {
  const auto id = static_cast<std::uint16_t>(rng.next() & 0xFFFF);
  return dns::Message::make_query(id, origin.with_subdomain(uuid_label(rng)),
                                  dns::RecordType::kA);
}

std::string doh_get_target(const dns::Message& query) {
  const auto wire = dns::encode(query);
  return "/dns-query?dns=" + transport::base64url_encode(wire);
}

}  // namespace dohperf::resolver
