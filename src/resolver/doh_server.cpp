#include "resolver/doh_server.h"

#include <utility>
#include <vector>

#include "dns/errors.h"
#include "dns/wire.h"
#include "transport/base64.h"

namespace dohperf::resolver {
namespace {

transport::HttpResponse bad_request(std::string reason) {
  transport::HttpResponse resp;
  resp.status = 400;
  resp.reason = "Bad Request";
  resp.headers.add("content-type", "text/plain");
  resp.body = std::move(reason);
  resp.headers.add("content-length", std::to_string(resp.body.size()));
  return resp;
}

}  // namespace

DohServer::DohServer(std::string hostname, netsim::Site frontend_site,
                     RecursiveResolver resolver)
    : hostname_(std::move(hostname)),
      frontend_site_(frontend_site),
      resolver_(std::move(resolver)) {}

netsim::Task<transport::HttpResponse> DohServer::handle(
    netsim::NetCtx& net, transport::HttpRequest request,
    std::uint32_t client_address) {
  ++served_;
  const obs::ScopedSpan span = net.span("doh_server.handle");

  if (request.target.rfind("/dns-query", 0) != 0) {
    co_return bad_request("unknown path");
  }

  std::vector<std::uint8_t> wire_bytes;
  if (request.method == "GET") {
    const auto dns_param = transport::query_param(request.target, "dns");
    if (!dns_param) co_return bad_request("missing dns parameter");
    auto decoded = transport::base64url_decode(*dns_param);
    if (!decoded) co_return bad_request("invalid base64url");
    wire_bytes = std::move(*decoded);
  } else if (request.method == "POST") {
    // RFC 8484 POST binding: the raw message travels as the body.
    const auto content_type = request.headers.get("content-type");
    if (!content_type || *content_type != "application/dns-message") {
      co_return bad_request("POST requires application/dns-message");
    }
    wire_bytes.assign(request.body.begin(), request.body.end());
  } else {
    transport::HttpResponse resp;
    resp.status = 405;
    resp.reason = "Method Not Allowed";
    co_return resp;
  }

  dns::Message query;
  try {
    query = dns::decode(wire_bytes);
  } catch (const dns::ParseError&) {
    co_return bad_request("malformed DNS message");
  }

  dns::Message answer =
      co_await resolver_.resolve(net, std::move(query), client_address);

  const std::vector<std::uint8_t> body_wire = dns::encode(answer);
  transport::HttpResponse resp;
  resp.status = 200;
  resp.reason = "OK";
  resp.headers.add("content-type", "application/dns-message");
  resp.headers.add("server", hostname_);
  resp.body.assign(body_wire.begin(), body_wire.end());
  resp.headers.add("content-length", std::to_string(resp.body.size()));
  co_return resp;
}

}  // namespace dohperf::resolver
