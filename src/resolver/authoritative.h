// The study's authoritative name server ("a.com", BIND9 on Linux in the
// paper, located in the USA).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "dns/message.h"
#include "dns/zone.h"
#include "netsim/latency.h"
#include "netsim/time.h"

namespace dohperf::resolver {

/// Serves one zone authoritatively and records which recursive resolvers
/// query it (the paper observed 1,896 unique recursive resolvers at its
/// authoritative server).
class AuthoritativeServer {
 public:
  AuthoritativeServer(dns::Zone zone, netsim::Site site,
                      netsim::Duration processing = netsim::from_ms(0.3));

  /// Answers `query` from zone data. `from_resolver` is the querying
  /// resolver's address, recorded for the dataset statistics.
  [[nodiscard]] dns::Message handle(const dns::Message& query,
                                    std::uint32_t from_resolver);

  [[nodiscard]] const netsim::Site& site() const { return site_; }
  [[nodiscard]] netsim::Duration processing_delay() const {
    return processing_;
  }
  [[nodiscard]] const dns::Zone& zone() const { return zone_; }
  [[nodiscard]] std::uint64_t query_count() const { return query_count_; }
  /// Queries that carried an EDNS Client Subnet option. Only the count is
  /// kept — the paper's ethics stance ("we take careful note not to
  /// inspect any potentially sensitive client data (e.g., client IPs
  /// present in the ECS-client-subnet DNS extension)").
  [[nodiscard]] std::uint64_t ecs_query_count() const {
    return ecs_query_count_;
  }
  [[nodiscard]] std::size_t unique_resolvers() const {
    return seen_resolvers_.size();
  }

 private:
  dns::Zone zone_;
  netsim::Site site_;
  netsim::Duration processing_;
  std::uint64_t query_count_ = 0;
  std::uint64_t ecs_query_count_ = 0;
  std::unordered_set<std::uint32_t> seen_resolvers_;
};

}  // namespace dohperf::resolver
