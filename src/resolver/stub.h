// Client-side stub helpers: query construction, UUID subdomains, and the
// RFC 8484 GET target for a query.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "dns/message.h"
#include "netsim/netctx.h"
#include "netsim/random.h"
#include "resolver/recursive.h"

namespace dohperf::resolver {

/// Outcome of a stub (client-side) resolution against a recursive
/// resolver.
struct StubResult {
  double elapsed_ms = 0.0;
  dns::Rcode rcode = dns::Rcode::kServFail;
  /// The query never got through: every retransmit was lost and the stub
  /// gave up (see kStubRetryPolicy). rcode stays SERVFAIL.
  bool timed_out = false;
  /// Retransmits the stub's retry state machine performed.
  int retransmits = 0;

  [[nodiscard]] bool ok() const { return rcode == dns::Rcode::kNoError; }
};

/// The stub's UDP retry schedule: ~1 s initial timer (the classic Do53
/// retransmit), doubling, giving up after the 4th transmission.
inline constexpr netsim::RetryPolicy kStubRetryPolicy{
    std::chrono::milliseconds(1000), 4};

/// One UDP question/answer exchange from `vantage` against `resolver`:
/// query out (with a stub retransmit penalty on simulated loss), full
/// recursive resolution, answer back. This is the shared primitive behind
/// every Do53 measurement, DoH/DoT/DoQ bootstrap, and page-load
/// resolution in the repository.
[[nodiscard]] netsim::Task<StubResult> stub_resolve(
    netsim::NetCtx& net, const netsim::Site& vantage,
    RecursiveResolver& resolver, dns::Message query,
    std::uint32_t client_address = 0);

/// Generates a fresh UUIDv4-style label ("f47ac10b-58cc-4372-a567-...")
/// used to defeat caching, as in the paper ("<UUID>.a.com").
[[nodiscard]] std::string uuid_label(netsim::Rng& rng);

/// Builds an A query for `<uuid>.<origin>` with a random message id.
[[nodiscard]] dns::Message make_probe_query(netsim::Rng& rng,
                                            const dns::DomainName& origin);

/// Builds the RFC 8484 GET target "/dns-query?dns=<base64url(query)>".
[[nodiscard]] std::string doh_get_target(const dns::Message& query);

}  // namespace dohperf::resolver
