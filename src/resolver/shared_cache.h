// Steady-state shared-cache model for the warm path.
//
// The campaign's measured names are deliberate cache-busters, so the
// resolver's *real* dns::Cache never captures the phenomenon the warm
// path is about: millions of ordinary users hammering the same popular
// names and keeping the resolver's cache warm for everyone. Simulating
// those background users per-query would be both prohibitively expensive
// and determinism-hostile (shards would race to warm shared state), so
// the model is *stateless*: under Zipf-distributed popularity and
// TTL-based expiry, a name of per-population arrival rate λ (queries/s)
// and TTL T is cached at steady state with probability
//
//     h = λT / (1 + λT)
//
// (the cache holds the name for T seconds after each miss-triggered
// refill; miss cycles are T + 1/λ long and the warm fraction is T of
// that). Each warm-path query draws a rank from the Zipf popularity
// model and flips a coin with that rank's h — a pure function of
// (config, population, rng), so serial/1/2/4-shard runs stay
// bit-identical and no cross-session cache state ever couples sessions.
//
// The same formula explains the paper's centralisation story: a
// centralized DoH provider aggregates a whole country's population into
// one PoP cache (large λ, high h even deep into the tail), while Do53
// splits the same demand across many ISP resolvers (λ scaled by the
// ISP's share, lower h) — hit rate rises monotonically with population.
#pragma once

#include <cstddef>

#include "netsim/random.h"
#include "stats/zipf.h"

namespace dohperf::resolver {

/// Knobs of the shared-cache model ([cache] in a CampaignSpec).
struct SharedCacheConfig {
  bool enabled = false;
  /// Size of the popular-name catalog the background population queries.
  std::size_t catalog_size = 10000;
  /// Zipf popularity exponent over the catalog.
  double zipf_exponent = 1.0;
  /// Background client population warming the *centralized* cache.
  double population = 1e6;
  /// Fraction of that population behind one ISP resolver (the Do53
  /// deployment splits demand across ~1/isp_share distributed caches).
  double isp_share = 0.05;
  /// Per-user background query rate against the catalog.
  double queries_per_user_per_hour = 8.0;
  /// TTL of the popular records (seconds) — the cache-warmth window.
  double ttl_s = 60.0;
};

/// One sampled warm-path lookup.
struct SharedCacheLookup {
  std::size_t rank = 0;  ///< Popularity rank of the queried name.
  bool hit = false;      ///< Whether the shared cache held it.
  double age_s = 0.0;    ///< Record age at hit time (for TTL decay).
};

/// The stateless steady-state model. Immutable after construction, so a
/// single instance is safely shared by every shard.
class SharedCacheModel {
 public:
  explicit SharedCacheModel(const SharedCacheConfig& config);

  /// Steady-state hit probability of `rank` under `population` users.
  [[nodiscard]] double hit_probability(std::size_t rank,
                                       double population) const;

  /// Expected hit rate of a Zipf-distributed query stream: sum over the
  /// catalog of p_r * h_r. Analytic — no sampling noise — which makes it
  /// the right curve for the monotonicity-vs-population acceptance gate.
  [[nodiscard]] double expected_hit_rate(double population) const;

  /// Draws one lookup: Zipf rank, Bernoulli hit at that rank's
  /// probability, record age uniform in [0, ttl). Consumes exactly three
  /// uniforms from `rng` regardless of outcome.
  [[nodiscard]] SharedCacheLookup sample(netsim::Rng& rng,
                                         double population) const;

  [[nodiscard]] const SharedCacheConfig& config() const { return config_; }
  [[nodiscard]] const stats::ZipfSampler& popularity() const {
    return zipf_;
  }

 private:
  SharedCacheConfig config_;
  stats::ZipfSampler zipf_;
};

}  // namespace dohperf::resolver
