#include "resolver/shared_cache.h"

namespace dohperf::resolver {

SharedCacheModel::SharedCacheModel(const SharedCacheConfig& config)
    : config_(config),
      zipf_(config.catalog_size, config.zipf_exponent) {}

double SharedCacheModel::hit_probability(std::size_t rank,
                                         double population) const {
  if (population <= 0.0) return 0.0;
  // Arrival rate of this name across the whole population (queries/s).
  const double lambda = population *
                        (config_.queries_per_user_per_hour / 3600.0) *
                        zipf_.probability(rank);
  const double lambda_ttl = lambda * config_.ttl_s;
  return lambda_ttl / (1.0 + lambda_ttl);
}

double SharedCacheModel::expected_hit_rate(double population) const {
  double rate = 0.0;
  for (std::size_t r = 0; r < zipf_.size(); ++r) {
    rate += zipf_.probability(r) * hit_probability(r, population);
  }
  return rate;
}

SharedCacheLookup SharedCacheModel::sample(netsim::Rng& rng,
                                           double population) const {
  SharedCacheLookup look;
  look.rank = zipf_(rng);
  look.hit = rng.bernoulli(hit_probability(look.rank, population));
  // At steady state the record's age at query time is uniform over its
  // lifetime. Drawn unconditionally so the rng stream shape does not
  // depend on the hit coin (three uniforms per sample, always).
  look.age_s = rng.uniform() * config_.ttl_s;
  return look;
}

}  // namespace dohperf::resolver
