#include "netsim/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dohperf::netsim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next() % range);
}

double Rng::normal() {
  // Box-Muller; discard the second variate for statelessness.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

Rng Rng::split(std::uint64_t tag) const {
  // Mix seed and tag through splitmix so substreams are uncorrelated.
  std::uint64_t x = seed_ ^ (tag * 0x9e3779b97f4a7c15ULL + 0x1234abcd5678ef01ULL);
  return Rng(splitmix64(x));
}

Rng Rng::split(std::string_view tag) const { return split(fnv1a(tag)); }

}  // namespace dohperf::netsim
