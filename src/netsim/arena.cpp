#include "netsim/arena.h"

#include <cassert>
#include <new>

namespace dohperf::netsim {
namespace {

thread_local Arena* tls_arena = nullptr;

/// Prefix of every frame block; 16 bytes, so a 16-aligned block keeps
/// its payload 16-aligned (the default new alignment).
struct BlockHeader {
  Arena* owner;       ///< nullptr = global operator new.
  std::size_t bytes;  ///< Block size as passed to allocate().
};
static_assert(sizeof(BlockHeader) == 16);

}  // namespace

Arena* Arena::current() noexcept { return tls_arena; }

void* Arena::bump(std::size_t bytes) {
  if (static_cast<std::size_t>(slab_end_ - cursor_) < bytes) {
    if (active_slab_ == slabs_.size()) {
      slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
      stats_.slab_bytes += kSlabBytes;
    }
    cursor_ = slabs_[active_slab_].get();
    slab_end_ = cursor_ + kSlabBytes;
    ++active_slab_;
  }
  std::byte* p = cursor_;
  cursor_ += bytes;
  return p;
}

void* Arena::allocate(std::size_t bytes) {
  const std::size_t cls = class_size(bytes);
  assert(cls <= kMaxBlockBytes);
  ++stats_.allocations;
  stats_.live_bytes += cls;
  if (stats_.live_bytes > stats_.high_water_bytes) {
    stats_.high_water_bytes = stats_.live_bytes;
  }
  void*& head = free_lists_[cls / kGranule - 1];
  if (head != nullptr) {
    ++stats_.reused;
    void* p = head;
    head = *static_cast<void**>(p);
    return p;
  }
  return bump(cls);
}

void Arena::deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t cls = class_size(bytes);
  stats_.live_bytes -= cls;
  void*& head = free_lists_[cls / kGranule - 1];
  *static_cast<void**>(p) = head;
  head = p;
}

void Arena::reset() noexcept {
  assert(stats_.live_bytes == 0 && "reset with outstanding blocks");
  free_lists_.fill(nullptr);
  active_slab_ = 0;
  cursor_ = nullptr;
  slab_end_ = nullptr;
}

ArenaScope::ArenaScope(Arena& arena) noexcept : previous_(tls_arena) {
  tls_arena = &arena;
}

ArenaScope::~ArenaScope() { tls_arena = previous_; }

void* arena_frame_allocate(std::size_t bytes) {
  const std::size_t total = bytes + sizeof(BlockHeader);
  Arena* arena = tls_arena;
  void* raw = nullptr;
  if (arena != nullptr && total <= Arena::kMaxBlockBytes) {
    raw = arena->allocate(total);
  } else {
    if (arena != nullptr) arena->note_fallback();
    arena = nullptr;
    raw = ::operator new(total);
  }
  auto* header = static_cast<BlockHeader*>(raw);
  header->owner = arena;
  header->bytes = total;
  return header + 1;
}

void arena_frame_free(void* p) noexcept {
  if (p == nullptr) return;
  auto* header = static_cast<BlockHeader*>(p) - 1;
  if (header->owner != nullptr) {
    header->owner->deallocate(header, header->bytes);
  } else {
    ::operator delete(header);
  }
}

}  // namespace dohperf::netsim
