// Time-ordered event queue for the discrete-event simulator.
//
// Implemented as a flat binary min-heap over movable callback slots.
// std::priority_queue only exposes const access to top(), which used to
// force a std::shared_ptr<Callback> per event just to move the callback
// out on pop. The flat heap owns its slots, so push() stores the callback
// in place and pop() moves it straight out: no per-event heap allocation
// beyond the callback itself — and the simulator's callbacks (coroutine
// resumptions, a single handle) fit std::function's small-buffer storage,
// so the steady-state hot loop allocates nothing at all.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netsim/time.h"

namespace dohperf::netsim {

/// A min-heap of (time, sequence, callback). Events at equal times fire in
/// insertion order, making simulations fully deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `fn` to fire at absolute time `at`.
  void push(SimTime at, Callback fn);

  /// True if no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const { return heap_.front().at; }

  /// Removes and returns the earliest event's callback. Requires !empty().
  [[nodiscard]] Callback pop();

  /// Pre-sizes the slot array for an expected event population.
  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };

  /// True if `a` must fire strictly before `b`.
  static bool before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dohperf::netsim
