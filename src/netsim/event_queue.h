// Time-ordered event queue for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "netsim/time.h"

namespace dohperf::netsim {

/// A min-heap of (time, sequence, callback). Events at equal times fire in
/// insertion order, making simulations fully deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `fn` to fire at absolute time `at`.
  void push(SimTime at, Callback fn);

  /// True if no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const { return heap_.top().at; }

  /// Removes and returns the earliest event's callback. Requires !empty().
  [[nodiscard]] Callback pop();

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    // Shared rather than unique because std::priority_queue only exposes
    // const access to top(); shared_ptr lets us move the callback out
    // without mutating the heap node.
    std::shared_ptr<Callback> fn;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dohperf::netsim
