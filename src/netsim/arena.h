// Per-shard slab arena for the session hot path.
//
// A campaign shard churns through millions of short-lived coroutine
// frames (one per protocol flow) whose sizes repeat across sessions.
// Hitting the global allocator for every frame serialises shards on the
// allocator's locks and fragments the heap; the arena instead carves
// fixed slabs into size-class blocks and recycles freed blocks through
// per-class free lists, so steady-state session execution performs no
// global allocation at all.
//
// Threading contract: an Arena is single-threaded. A shard installs its
// arena via ArenaScope for the duration of run_shard(); every frame is
// allocated and freed on that shard's thread before the scope ends.
// Blocks carry a back-pointer header, so a block freed after its scope
// ended (or allocated outside any scope) still routes correctly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dohperf::netsim {

/// Allocation counters for the self-profile (ShardProfile / benches).
struct ArenaStats {
  std::uint64_t allocations = 0;  ///< Blocks served by the arena.
  std::uint64_t reused = 0;       ///< ... of which came from a free list.
  std::uint64_t fallbacks = 0;    ///< Oversized requests sent to ::new.
  std::uint64_t slab_bytes = 0;   ///< Total slab capacity acquired.
  std::uint64_t live_bytes = 0;   ///< Currently outstanding block bytes.
  std::uint64_t high_water_bytes = 0;  ///< Peak of live_bytes.

  ArenaStats& operator+=(const ArenaStats& o) {
    allocations += o.allocations;
    reused += o.reused;
    fallbacks += o.fallbacks;
    slab_bytes += o.slab_bytes;
    live_bytes += o.live_bytes;
    high_water_bytes += o.high_water_bytes;
    return *this;
  }
};

/// A bump/slab allocator with size-class free lists.
class Arena {
 public:
  static constexpr std::size_t kSlabBytes = 256 * 1024;
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxBlockBytes = 8192;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A block of at least `bytes` (<= kMaxBlockBytes), 16-byte aligned.
  void* allocate(std::size_t bytes);
  /// Returns a block to its size-class free list. `bytes` must be the
  /// value passed to allocate().
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Drops every free list and rewinds the bump cursor; slabs are kept
  /// for reuse. Only valid when no blocks are outstanding.
  void reset() noexcept;

  [[nodiscard]] const ArenaStats& stats() const { return stats_; }
  [[nodiscard]] static std::size_t class_size(std::size_t bytes) {
    return (bytes + kGranule - 1) / kGranule * kGranule;
  }

  /// The arena installed on the current thread (nullptr outside any
  /// ArenaScope).
  [[nodiscard]] static Arena* current() noexcept;

  void note_fallback() noexcept { ++stats_.fallbacks; }

 private:
  void* bump(std::size_t bytes);

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t active_slab_ = 0;  ///< Next slab index to open.
  std::byte* cursor_ = nullptr;
  std::byte* slab_end_ = nullptr;
  std::array<void*, kMaxBlockBytes / kGranule> free_lists_{};
  ArenaStats stats_;
};

/// RAII installation of an arena as the current thread's allocator for
/// coroutine frames (see arena_frame_allocate below).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) noexcept;
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* previous_ = nullptr;
};

/// Frame allocation entry points used by Task's promise operator new /
/// delete. Every block is prefixed with a 16-byte header recording the
/// owning arena (nullptr = global heap), so deallocation never depends
/// on which scope — if any — is installed at free time.
[[nodiscard]] void* arena_frame_allocate(std::size_t bytes);
void arena_frame_free(void* p) noexcept;

}  // namespace dohperf::netsim
