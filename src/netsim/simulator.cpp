#include "netsim/simulator.h"

#include <utility>

namespace dohperf::netsim {

void Simulator::schedule_at(SimTime at, EventQueue::Callback fn) {
  if (at < now_) at = now_;
  queue_.push(at, std::move(fn));
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

void Simulator::schedule_in(Duration delay, EventQueue::Callback fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  queue_.push(now_ + delay, std::move(fn));
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  auto fn = queue_.pop();
  fn();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++n;
  }
  return n;
}

}  // namespace dohperf::netsim
