// Simulated time.
//
// All simulation timestamps are std::chrono time-points on a dedicated
// clock so they cannot be mixed up with wall-clock time or with durations.
// Microsecond resolution comfortably resolves the sub-millisecond jitter
// the latency model produces while leaving ~292k years of range.
#pragma once

#include <chrono>
#include <cstdint>

namespace dohperf::netsim {

/// Simulation duration with microsecond ticks.
using Duration = std::chrono::duration<std::int64_t, std::micro>;

/// The simulated clock. Never advances by itself; only the Simulator
/// moves it. Not a Cpp17Clock (no now()) on purpose.
struct SimClock {
  using rep = Duration::rep;
  using period = Duration::period;
  using duration = Duration;
  using time_point = std::chrono::time_point<SimClock, Duration>;
  static constexpr bool is_steady = true;
};

/// A point in simulated time.
using SimTime = SimClock::time_point;

/// Converts a (possibly fractional) millisecond count to a Duration.
[[nodiscard]] constexpr Duration from_ms(double ms) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Converts a Duration to fractional milliseconds.
[[nodiscard]] constexpr double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Milliseconds elapsed between two sim-time points.
[[nodiscard]] constexpr double ms_between(SimTime from, SimTime to) {
  return to_ms(to - from);
}

}  // namespace dohperf::netsim
