// Wide-area latency model.
//
// One-way delay between two sites decomposes, as in standard WAN models,
// into geodesic propagation inflated by routing indirectness, per-endpoint
// access ("last-mile") delay, a small size-dependent serialisation cost,
// and multiplicative lognormal jitter. Route inflation and last-mile delay
// are where country-level infrastructure quality enters the simulation
// (see world::site_for_country), which is what makes the paper's
// explanatory covariates (bandwidth, AS counts) predictive.
#pragma once

#include <cstddef>

#include "geo/coordinates.h"
#include "netsim/random.h"
#include "netsim/time.h"

namespace dohperf::netsim {

/// A network-attached location.
struct Site {
  geo::LatLon position;
  /// One-way access-network delay contributed by this endpoint (ms).
  double lastmile_ms = 1.0;
  /// Multiplier (>= 1) on great-circle propagation delay for paths that
  /// touch this endpoint; models circuitous routing where transit options
  /// are scarce.
  double route_inflation = 1.3;
  /// Lognormal sigma of this endpoint's delay jitter.
  double jitter_sigma = 0.08;
  /// Probability that a datagram crossing this endpoint is lost and must
  /// be retried by the application (UDP DNS has no transport recovery).
  double loss_rate = 0.0;
};

/// Tunables for the delay computation.
struct LatencyConfig {
  /// Effective signal speed in fibre, km per ms (~2/3 c).
  double km_per_ms = 200.0;
  /// Serialisation/queuing cost per kilobyte of payload (ms).
  double per_kb_ms = 0.05;
  /// Floor for any one-way delay (ms).
  double min_one_way_ms = 0.15;
};

/// Computes one-way delays between sites.
class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(LatencyConfig cfg) : cfg_(cfg) {}

  /// Deterministic (jitter-free) one-way delay in ms.
  [[nodiscard]] double expected_one_way_ms(const Site& a, const Site& b,
                                           std::size_t bytes) const;

  /// Samples a one-way delay with jitter.
  [[nodiscard]] Duration one_way(const Site& a, const Site& b,
                                 std::size_t bytes, Rng& rng) const;

  /// Deterministic round-trip estimate (2x expected one-way, same bytes
  /// each direction).
  [[nodiscard]] double expected_rtt_ms(const Site& a, const Site& b,
                                       std::size_t bytes = 64) const;

  [[nodiscard]] const LatencyConfig& config() const { return cfg_; }

 private:
  LatencyConfig cfg_{};
};

}  // namespace dohperf::netsim
