// Bundles the pieces a protocol flow needs: simulator, latency model, RNG.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "netsim/latency.h"
#include "netsim/simulator.h"
#include "netsim/task.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dohperf::netsim {

/// One captured message transmission (the simulator's "Wireshark"). The
/// paper validated its assumptions by capturing exit-node traffic
/// (Section 4.3); attaching a TraceSink to a NetCtx gives flows the same
/// observability. `label` names the layer/phase that sent the message —
/// the innermost span open when the hop was captured ("tls_handshake",
/// "tunnel.send", ...), empty when no span context is attached.
struct TraceEvent {
  SimTime sent_at{};
  SimTime delivered_at{};
  geo::LatLon from;
  geo::LatLon to;
  std::size_t bytes = 0;
  std::string label;
};

/// Collects TraceEvents from every hop routed through a NetCtx.
class TraceSink {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Execution context threaded through every protocol coroutine.
///
/// Non-owning; the owner (usually world::WorldModel) keeps the referenced
/// objects alive for the duration of the simulation.
///
/// Observability attachments are all optional and purely observational:
/// none of them consumes RNG draws, schedules events, or advances the
/// clock, so attaching them cannot change a flow's timing or output.
struct NetCtx {
  Simulator& sim;
  const LatencyModel& latency;
  Rng& rng;
  /// Optional capture point; when set, every hop is recorded.
  TraceSink* trace = nullptr;
  /// Optional span tree; when set, instrumented layers open nested spans
  /// and every hop is recorded as a leaf under the innermost open span.
  obs::SpanContext* spans = nullptr;
  /// Optional per-shard metrics registry (messages, bytes, handshakes,
  /// retries, ...). Owned by whoever runs the flows; single-writer.
  obs::Metrics* metrics = nullptr;

  /// Opens a named span (no-op guard when no span context is attached).
  [[nodiscard]] obs::ScopedSpan span(std::string name) {
    return spans != nullptr
               ? obs::ScopedSpan(spans, sim, std::move(name))
               : obs::ScopedSpan();
  }

  /// Simulates one message travelling a -> b; completes at arrival time.
  Task<void> hop(const Site& a, const Site& b, std::size_t bytes) {
    const SimTime sent = sim.now();
    co_await sim.sleep(latency.one_way(a, b, bytes, rng));
    if (metrics != nullptr) {
      ++metrics->counters.messages;
      metrics->counters.bytes_on_wire += bytes;
    }
    if (spans != nullptr) {
      spans->record_hop(sent, sim.now(), a.position, b.position, bytes);
    }
    if (trace != nullptr) {
      trace->record(TraceEvent{sent, sim.now(), a.position, b.position,
                               bytes,
                               spans != nullptr ? spans->current_name()
                                                : std::string()});
    }
  }

  /// Simulates a request/response exchange; returns the measured RTT.
  Task<Duration> round_trip(const Site& a, const Site& b,
                            std::size_t fwd_bytes, std::size_t back_bytes) {
    const SimTime start = sim.now();
    co_await hop(a, b, fwd_bytes);
    co_await hop(b, a, back_bytes);
    co_return sim.now() - start;
  }

  /// Pure processing delay at a host.
  Task<void> process(Duration d) { co_await sim.sleep(d); }

  /// Samples whether a datagram on the path a<->b is lost; if so, returns
  /// the application-level retry penalty (UDP DNS clients typically
  /// retransmit after a fixed timeout), else zero.
  Duration sample_loss_penalty(const Site& a, const Site& b,
                               Duration retry_timeout) {
    const double combined =
        1.0 - (1.0 - a.loss_rate) * (1.0 - b.loss_rate);
    if (rng.bernoulli(combined)) {
      if (metrics != nullptr) ++metrics->counters.loss_retries;
      return retry_timeout;
    }
    return Duration::zero();
  }
};

}  // namespace dohperf::netsim
