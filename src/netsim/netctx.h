// Bundles the pieces a protocol flow needs: simulator, latency model, RNG.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "netsim/faultplan.h"
#include "netsim/latency.h"
#include "netsim/simulator.h"
#include "netsim/task.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/span.h"

namespace dohperf::netsim {

/// Per-attempt retransmit behaviour for one datagram exchange: the timer
/// starts at `initial_timeout` and doubles after every unanswered
/// attempt (classic exponential backoff), and the exchange gives up
/// after `max_attempts` transmissions (the first send plus retransmits).
struct RetryPolicy {
  Duration initial_timeout = from_ms(1000.0);
  int max_attempts = 4;
};

/// What the retry state machine observed for one exchange.
struct RetryOutcome {
  bool delivered = true;
  int retransmits = 0;
  /// Total time spent waiting on retransmit timers.
  Duration backoff{};
};

/// One captured message transmission (the simulator's "Wireshark"). The
/// paper validated its assumptions by capturing exit-node traffic
/// (Section 4.3); attaching a TraceSink to a NetCtx gives flows the same
/// observability. `label` names the layer/phase that sent the message —
/// the innermost span open when the hop was captured ("tls_handshake",
/// "tunnel.send", ...), empty when no span context is attached.
struct TraceEvent {
  SimTime sent_at{};
  SimTime delivered_at{};
  geo::LatLon from;
  geo::LatLon to;
  std::size_t bytes = 0;
  std::string label;
};

/// Collects TraceEvents from every hop routed through a NetCtx.
class TraceSink {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Execution context threaded through every protocol coroutine.
///
/// Non-owning; the owner (usually world::WorldModel) keeps the referenced
/// objects alive for the duration of the simulation.
///
/// Observability attachments are all optional and purely observational:
/// none of them consumes RNG draws, schedules events, or advances the
/// clock, so attaching them cannot change a flow's timing or output.
struct NetCtx {
  Simulator& sim;
  const LatencyModel& latency;
  Rng& rng;
  /// Optional capture point; when set, every hop is recorded.
  TraceSink* trace = nullptr;
  /// Optional span tree; when set, instrumented layers open nested spans
  /// and every hop is recorded as a leaf under the innermost open span.
  obs::SpanContext* spans = nullptr;
  /// Optional per-shard metrics registry (messages, bytes, handshakes,
  /// retries, ...). Owned by whoever runs the flows; single-writer.
  obs::Metrics* metrics = nullptr;
  /// Optional episodic fault plan (loss spikes, blackouts, brownouts,
  /// provider outages) with windows measured from `fault_epoch`. The
  /// campaign samples one plan per session from the session's own RNG
  /// substream, so faults are independent of shard count and scheduling.
  const FaultPlan* faults = nullptr;
  /// The epoch the attached plan's windows are relative to (usually the
  /// session's start time).
  SimTime fault_epoch{};
  /// Optional sim-time series handle (null-safe when series is unset):
  /// retry machines and brownout inflation record *when within the
  /// session* they fired, under whatever labels the owner last set.
  obs::SeriesRecorder series{};
  /// Optional phase-attribution handle (null-safe when unset): flows
  /// install a FlowAttributionScope and instrumented layers push exact
  /// integer-microsecond phase frames, folded into the owner's ledger
  /// under whatever labels the owner last set.
  obs::AttributionRecorder attribution{};

  /// Opens a named span (no-op guard when no span context is attached).
  [[nodiscard]] obs::ScopedSpan span(std::string name) {
    return spans != nullptr
               ? obs::ScopedSpan(spans, sim, std::move(name))
               : obs::ScopedSpan();
  }

  /// Enters an attribution phase (no-op guard when no flow is active).
  [[nodiscard]] obs::ScopedPhase phase(obs::Phase p) {
    return obs::ScopedPhase(attribution, sim, p);
  }

  /// Simulates one message travelling a -> b; completes at arrival time.
  Task<void> hop(const Site& a, const Site& b, std::size_t bytes) {
    const SimTime sent = sim.now();
    co_await sim.sleep(latency.one_way(a, b, bytes, rng));
    if (metrics != nullptr) {
      ++metrics->counters.messages;
      metrics->counters.bytes_on_wire += bytes;
    }
    if (spans != nullptr) {
      spans->record_hop(sent, sim.now(), a.position, b.position, bytes);
    }
    if (trace != nullptr) {
      trace->record(TraceEvent{sent, sim.now(), a.position, b.position,
                               bytes,
                               spans != nullptr ? spans->current_name()
                                                : std::string()});
    }
  }

  /// Simulates a request/response exchange; returns the measured RTT.
  Task<Duration> round_trip(const Site& a, const Site& b,
                            std::size_t fwd_bytes, std::size_t back_bytes) {
    const SimTime start = sim.now();
    co_await hop(a, b, fwd_bytes);
    co_await hop(b, a, back_bytes);
    co_return sim.now() - start;
  }

  /// Pure processing delay at a host.
  Task<void> process(Duration d) { co_await sim.sleep(d); }

  /// Processing delay at a host, inflated while a brownout episode
  /// covers the host's site. The multiplier path round-trips the
  /// duration through fractional milliseconds, so it is applied only
  /// when an episode is actually active — an idle or absent plan passes
  /// `d` through bit-exactly. The sleep is attributed to
  /// kServerProcessing, with the inflation excess carved out into
  /// kBrownout afterwards (attribution schedules nothing and consumes no
  /// draws, so timings are untouched).
  Task<void> process_at(const Site& where, Duration d) {
    const Duration base = d;
    if (faults != nullptr) {
      const double multiplier =
          faults->processing_multiplier(where.position, fault_now());
      if (multiplier > 1.0) {
        d = from_ms(to_ms(d) * multiplier);
        if (metrics != nullptr) ++metrics->counters.brownout_delays;
        series.count("brownout_delay", sim.now());
      }
    }
    obs::ScopedPhase processing = phase(obs::Phase::kServerProcessing);
    co_await process(d);
    if (d > base) {
      attribution.shift(processing.token(),
                        static_cast<std::uint64_t>((d - base).count()),
                        obs::Phase::kBrownout, sim.now());
    }
  }

  /// Time since the attached fault plan's epoch.
  [[nodiscard]] Duration fault_now() const {
    return sim.now() - fault_epoch;
  }

  /// True when a fault episode currently touches the a<->b path.
  [[nodiscard]] bool fault_active(const Site& a, const Site& b) const {
    return faults != nullptr && !faults->empty() &&
           faults->affects_path(a.position, b.position, fault_now());
  }

  /// Probability that one datagram on a<->b is lost right now: the
  /// endpoints' baseline rates composed with any active loss-spike
  /// episodes. Computes exactly the historical baseline expression when
  /// no episode contributes.
  [[nodiscard]] double loss_probability(const Site& a, const Site& b) const {
    double combined = 1.0 - (1.0 - a.loss_rate) * (1.0 - b.loss_rate);
    if (faults != nullptr && !faults->empty()) {
      const Duration t = fault_now();
      const double spike =
          1.0 - (1.0 - faults->extra_loss(a.position, t)) *
                    (1.0 - faults->extra_loss(b.position, t));
      if (spike > 0.0) combined = 1.0 - (1.0 - combined) * (1.0 - spike);
    }
    return combined;
  }

  /// Runs the datagram retry state machine for one request/response
  /// exchange on a<->b. Outside any fault episode this is the calibrated
  /// baseline, draw- and event-compatible with the historical one-shot
  /// loss penalty: a single loss draw, and on loss one charged
  /// retransmit timer after which the retransmit is assumed delivered —
  /// so an empty plan reproduces golden datasets bit-for-bit. Under an
  /// active episode every attempt draws its own fate (blackout windows
  /// lose deterministically), the timer backs off exponentially, and the
  /// exchange gives up after policy.max_attempts transmissions.
  Task<RetryOutcome> await_datagram_delivery(const Site& a, const Site& b,
                                             RetryPolicy policy) {
    if (!fault_active(a, b)) {
      RetryOutcome out;
      if (rng.bernoulli(loss_probability(a, b))) {
        out.retransmits = 1;
        out.backoff = policy.initial_timeout;
        if (metrics != nullptr) {
          ++metrics->counters.loss_retries;
          metrics->histogram("retry_backoff").record(to_ms(out.backoff));
        }
        series.count("loss_retry", sim.now());
        const obs::ScopedSpan backoff_span = span("retry_backoff");
        const obs::ScopedPhase backoff_phase =
            phase(obs::Phase::kRetryBackoff);
        co_await sim.sleep(out.backoff);
      }
      co_return out;
    }
    co_return co_await run_retry_machine(a, b, policy,
                                         /*handshake=*/false);
  }

  /// SYN/Initial/ClientHello-style retransmit gate for connection
  /// establishment. The calibrated baseline carries no handshake loss
  /// (transport-level recovery is folded into the latency
  /// distributions), so with no active episode this returns immediately
  /// without consuming an RNG draw or scheduling an event — golden
  /// timings stay untouched. Under an episode the handshake datagrams
  /// run the same state machine as application datagrams.
  Task<RetryOutcome> handshake_gate(const Site& a, const Site& b,
                                    RetryPolicy policy) {
    if (!fault_active(a, b)) co_return RetryOutcome{};
    co_return co_await run_retry_machine(a, b, policy, /*handshake=*/true);
  }

 private:
  /// The per-attempt machine, entered only under an active episode.
  Task<RetryOutcome> run_retry_machine(const Site& a, const Site& b,
                                       RetryPolicy policy, bool handshake) {
    RetryOutcome out;
    Duration timer = policy.initial_timeout;
    for (int attempt = 1;; ++attempt) {
      const bool lost =
          faults->link_blacked_out(a.position, b.position, fault_now()) ||
          rng.bernoulli(loss_probability(a, b));
      if (!lost) {
        out.delivered = true;
        co_return out;
      }
      if (attempt >= policy.max_attempts) {
        out.delivered = false;
        if (metrics != nullptr) ++metrics->counters.retry_timeouts;
        series.count("retry_give_up", sim.now());
        co_return out;
      }
      ++out.retransmits;
      if (metrics != nullptr) {
        if (handshake) {
          ++metrics->counters.handshake_retries;
        } else {
          ++metrics->counters.loss_retries;
        }
        metrics->histogram("retry_backoff").record(to_ms(timer));
      }
      series.count(handshake ? "handshake_retry" : "loss_retry", sim.now());
      {
        const obs::ScopedSpan backoff_span = span("retry_backoff");
        const obs::ScopedPhase backoff_phase =
            phase(obs::Phase::kRetryBackoff);
        co_await sim.sleep(timer);
      }
      out.backoff += timer;
      timer *= 2;
    }
  }
};

}  // namespace dohperf::netsim
