// Bundles the pieces a protocol flow needs: simulator, latency model, RNG.
#pragma once

#include <cstddef>
#include <vector>

#include "netsim/latency.h"
#include "netsim/simulator.h"
#include "netsim/task.h"

namespace dohperf::netsim {

/// One captured message transmission (the simulator's "Wireshark"). The
/// paper validated its assumptions by capturing exit-node traffic
/// (Section 4.3); attaching a TraceSink to a NetCtx gives flows the same
/// observability.
struct TraceEvent {
  SimTime sent_at{};
  SimTime delivered_at{};
  geo::LatLon from;
  geo::LatLon to;
  std::size_t bytes = 0;
};

/// Collects TraceEvents from every hop routed through a NetCtx.
class TraceSink {
 public:
  void record(TraceEvent event) { events_.push_back(event); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Execution context threaded through every protocol coroutine.
///
/// Non-owning; the owner (usually world::WorldModel) keeps the referenced
/// objects alive for the duration of the simulation.
struct NetCtx {
  Simulator& sim;
  const LatencyModel& latency;
  Rng& rng;
  /// Optional capture point; when set, every hop is recorded.
  TraceSink* trace = nullptr;

  /// Simulates one message travelling a -> b; completes at arrival time.
  Task<void> hop(const Site& a, const Site& b, std::size_t bytes) {
    const SimTime sent = sim.now();
    co_await sim.sleep(latency.one_way(a, b, bytes, rng));
    if (trace != nullptr) {
      trace->record(
          TraceEvent{sent, sim.now(), a.position, b.position, bytes});
    }
  }

  /// Simulates a request/response exchange; returns the measured RTT.
  Task<Duration> round_trip(const Site& a, const Site& b,
                            std::size_t fwd_bytes, std::size_t back_bytes) {
    const SimTime start = sim.now();
    co_await hop(a, b, fwd_bytes);
    co_await hop(b, a, back_bytes);
    co_return sim.now() - start;
  }

  /// Pure processing delay at a host.
  Task<void> process(Duration d) { co_await sim.sleep(d); }

  /// Samples whether a datagram on the path a<->b is lost; if so, returns
  /// the application-level retry penalty (UDP DNS clients typically
  /// retransmit after a fixed timeout), else zero.
  Duration sample_loss_penalty(const Site& a, const Site& b,
                               Duration retry_timeout) {
    const double combined =
        1.0 - (1.0 - a.loss_rate) * (1.0 - b.loss_rate);
    return rng.bernoulli(combined) ? retry_timeout : Duration::zero();
  }
};

}  // namespace dohperf::netsim
