// The discrete-event simulator driving all measurements.
#pragma once

#include <cstdint>

#include "netsim/event_queue.h"
#include "netsim/time.h"

namespace dohperf::netsim {

/// Owns the simulated clock and the event queue.
///
/// Protocol flows are written as coroutines (see task.h) that co_await
/// Simulator::sleep(); the simulator advances time event by event until
/// the queue drains.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now for past times).
  void schedule_at(SimTime at, EventQueue::Callback fn);

  /// Schedules `fn` after `delay` (negative delays fire immediately).
  void schedule_in(Duration delay, EventQueue::Callback fn);

  /// Runs a single event; returns false if the queue was empty.
  bool step();

  /// Runs until no events remain. Returns the number of events processed.
  std::uint64_t run();

  /// Runs until the queue is empty or the clock passes `deadline`.
  std::uint64_t run_until(SimTime deadline);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Largest queue size ever observed after a push — the shard
  /// self-profiling "how deep did the event heap get" number. Purely
  /// observational: tracked on the host side, never read by events.
  [[nodiscard]] std::size_t queue_high_water() const {
    return queue_high_water_;
  }

  /// Awaitable that suspends the current coroutine for `delay`.
  /// Defined in task.h to keep coroutine machinery out of this header.
  struct SleepAwaitable;
  [[nodiscard]] SleepAwaitable sleep(Duration delay);

 private:
  SimTime now_{};
  EventQueue queue_;
  std::size_t queue_high_water_ = 0;
};

}  // namespace dohperf::netsim
