// Coroutine task type for simulated protocol flows.
//
// A Task<T> is an eagerly-started coroutine running on simulated time.
// Flows read sequentially while the Simulator interleaves them:
//
//   Task<Duration> tcp_connect(Simulator& sim, ...) {
//     co_await sim.sleep(one_way_delay);   // SYN
//     co_await sim.sleep(one_way_delay);   // SYN/ACK
//     co_return sim.now() - start;
//   }
//
// Lifetime contract: a Task must outlive the simulation that drives it
// (pending sleep events hold the coroutine handle). Destroying a Task
// before it completes is a programming error, checked by assert.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "netsim/arena.h"
#include "netsim/simulator.h"

namespace dohperf::netsim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  // Frames come from the shard's arena when one is installed (see
  // netsim/arena.h); the block header makes delete safe either way.
  static void* operator new(std::size_t bytes) {
    return arena_frame_allocate(bytes);
  }
  static void operator delete(void* p) noexcept { arena_frame_free(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    arena_frame_free(p);
  }

  std::suspend_never initial_suspend() noexcept { return {}; }

  /// At final suspension, transfer control to whoever awaited us (if
  /// anyone); the frame stays alive so the Task can read the result.
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      if (auto cont = h.promise().continuation) return cont;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// An eagerly-started coroutine yielding a value of type T.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// True once the coroutine has run to completion (or thrown).
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Result accessor; requires done(). Rethrows a stored exception.
  [[nodiscard]] T& result() {
    assert(done());
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    return *handle_.promise().value;
  }

  // Awaiter so a parent coroutine can `co_await` this task.
  bool await_ready() const noexcept { return done(); }
  void await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
  }
  T await_resume() { return std::move(result()); }

 private:
  void destroy() {
    if (handle_) {
      assert(handle_.done() && "destroying an in-flight Task");
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Specialisation for void-returning flows.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Requires done(); rethrows a stored exception.
  void result() {
    assert(done());
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

  bool await_ready() const noexcept { return done(); }
  void await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
  }
  void await_resume() { result(); }

 private:
  void destroy() {
    if (handle_) {
      assert(handle_.done() && "destroying an in-flight Task");
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable returned by Simulator::sleep().
struct Simulator::SleepAwaitable {
  Simulator& sim;
  Duration delay;

  bool await_ready() const noexcept { return delay <= Duration::zero(); }
  void await_suspend(std::coroutine_handle<> h) const {
    sim.schedule_in(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline Simulator::SleepAwaitable Simulator::sleep(Duration delay) {
  return SleepAwaitable{*this, delay};
}

}  // namespace dohperf::netsim
