// Deterministic random number generation for the simulator.
//
// All randomness in a simulation flows from a single seed through
// explicitly-split substreams, so any experiment is reproducible from its
// seed alone (required for the ground-truth validation experiments, where
// the same world must be measured twice).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace dohperf::netsim {

/// xoshiro256** generator seeded via splitmix64.
///
/// Small, fast, and good enough statistically for latency sampling; we do
/// not use std::mt19937 because its state is bulky to split per-client.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal parameterised by its *median* and the underlying normal's
  /// sigma: exp(ln(median) + sigma*Z). Median-parameterisation matches how
  /// the paper reports latencies (medians everywhere).
  double lognormal_median(double median, double sigma);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent substream labelled by `tag`; deterministic in
  /// (parent seed, tag).
  [[nodiscard]] Rng split(std::uint64_t tag) const;

  /// Derives a substream from a string label (FNV-1a hashed).
  [[nodiscard]] Rng split(std::string_view tag) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  ///< Original seed, kept for split().
};

}  // namespace dohperf::netsim
