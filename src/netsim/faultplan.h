// Episodic fault injection: time-windowed network pathologies.
//
// A FaultPlan is a small set of episodes — per-site packet-loss spikes,
// link blackouts, server brownouts (inflated processing delay), and
// whole-provider outages — whose windows are measured from an *epoch*,
// not from the simulation's absolute clock. That choice is what keeps the
// sharded campaign's bit-identity contract intact: each shard's simulator
// advances its own private clock, so a globally wall-clock-windowed fault
// would hit different sessions depending on the shard count. Instead the
// campaign samples one plan per session from the session's own RNG
// substream and anchors the windows at the session's start, making the
// realized faults a pure function of (seed, session key).
//
// Episodes target geography rather than object identity: a Site carries
// no ID, so an episode covers every endpoint within `radius_miles` of its
// center. This mirrors how real incidents present (a lossy national
// backbone, a regional resolver brownout) and lets one plan affect every
// path a session touches near the afflicted region.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/coordinates.h"
#include "netsim/random.h"
#include "netsim/time.h"

namespace dohperf::netsim {

/// A circle radius that covers any point on Earth (circumference is
/// ~24.9k miles); used for the "anywhere" side of a blackout pair.
inline constexpr double kAnywhereMiles = 1.0e9;

/// A half-open window [start, end) relative to the plan's epoch.
struct FaultWindow {
  Duration start{};
  Duration end{};

  [[nodiscard]] bool covers(Duration t) const {
    return t >= start && t < end;
  }
};

/// Elevated packet loss for every endpoint near `center` while the
/// window is open. Composed with the endpoints' baseline loss rates.
struct LossSpikeEpisode {
  FaultWindow window;
  geo::LatLon center;
  double radius_miles = 0.0;
  double extra_loss = 0.0;
};

/// A dead link: every datagram between an endpoint near `a` and an
/// endpoint near `b` (either orientation) is lost while the window is
/// open. A single-site blackout is the pair (site, anywhere).
struct BlackoutEpisode {
  FaultWindow window;
  geo::LatLon a;
  double a_radius_miles = 0.0;
  geo::LatLon b;
  double b_radius_miles = kAnywhereMiles;
};

/// Overloaded servers near `center` process `multiplier` times slower
/// while the window is open.
struct BrownoutEpisode {
  FaultWindow window;
  geo::LatLon center;
  double radius_miles = 0.0;
  double multiplier = 1.0;
};

/// A provider-wide outage: every measurement against `provider` fails
/// while the window is open.
struct ProviderOutageEpisode {
  FaultWindow window;
  std::string provider;
};

/// Per-session realization probabilities and episode shapes for
/// FaultPlan::sample(). All probabilities default to zero: a
/// default-constructed config is disabled and samples an empty plan.
struct FaultPlanConfig {
  /// Probability that the session experiences a loss spike.
  double loss_spike_probability = 0.0;
  double spike_extra_loss = 0.4;
  double spike_radius_miles = 750.0;
  Duration spike_start_max = from_ms(2000.0);
  Duration spike_duration = from_ms(4000.0);

  /// Probability that one of the session's focal sites goes dark.
  double blackout_probability = 0.0;
  double blackout_radius_miles = 300.0;
  Duration blackout_start_max = from_ms(1000.0);
  Duration blackout_duration = from_ms(2500.0);

  /// Probability that servers near a focal site brown out.
  double brownout_probability = 0.0;
  double brownout_multiplier = 12.0;
  double brownout_radius_miles = 750.0;
  Duration brownout_start_max = from_ms(1000.0);
  Duration brownout_duration = from_ms(5000.0);

  /// Per-provider probability of a session-long outage.
  double provider_outage_probability = 0.0;

  /// Deterministic recurring schedules, declared in *campaign* time (the
  /// virtual multi-day axis the SLO layer windows over) and translated
  /// into session-epoch-relative episodes by append_recurring_episodes().
  /// Provider i (by position in the campaign's provider list) is down
  /// during [stagger*i + k*period*(i+1), +duration) for every integer
  /// k >= 0 — the per-provider period spread is what makes availability
  /// differ measurably across providers. A zero period disables the
  /// schedule.
  Duration provider_outage_period{};
  Duration provider_outage_duration{};
  Duration provider_outage_stagger{};

  /// Recurring regional blackout: the client's region goes dark during
  /// [phase + k*period, +duration), with the phase supplied per session
  /// (a stable hash of the client's country, so regions fail at
  /// different campaign times). Zero period disables.
  Duration regional_blackout_period{};
  Duration regional_blackout_duration{};
  double regional_blackout_radius_miles = 500.0;

  [[nodiscard]] bool enabled() const {
    return loss_spike_probability > 0.0 || blackout_probability > 0.0 ||
           brownout_probability > 0.0 || provider_outage_probability > 0.0 ||
           recurring_enabled();
  }

  /// True when any campaign-time recurring schedule is declared.
  [[nodiscard]] bool recurring_enabled() const {
    return provider_outage_period > Duration::zero() ||
           regional_blackout_period > Duration::zero();
  }

  /// The canonical non-trivial plan used by the determinism tests and the
  /// fault-injection bench: every fault class enabled at a rate that
  /// exercises retries, give-ups, and fallbacks without drowning the
  /// dataset.
  [[nodiscard]] static FaultPlanConfig canonical();
};

/// One session's realized fault episodes, queried by the retry machinery
/// with times relative to the epoch the owner anchored (NetCtx holds the
/// epoch; the plan itself is time-base agnostic). Queries are pure: no
/// RNG, no clock.
class FaultPlan {
 public:
  void add_loss_spike(LossSpikeEpisode episode);
  void add_blackout(BlackoutEpisode episode);
  void add_brownout(BrownoutEpisode episode);
  void add_provider_outage(ProviderOutageEpisode episode);

  [[nodiscard]] bool empty() const {
    return loss_spikes_.empty() && blackouts_.empty() &&
           brownouts_.empty() && provider_outages_.empty();
  }

  /// Extra loss probability for an endpoint at `pos` at time `t`
  /// (episodes compose multiplicatively on the survival probability).
  [[nodiscard]] double extra_loss(const geo::LatLon& pos, Duration t) const;

  /// True when a blackout window currently severs the a<->b link.
  [[nodiscard]] bool link_blacked_out(const geo::LatLon& a,
                                      const geo::LatLon& b,
                                      Duration t) const;

  /// Processing-delay multiplier for a server at `pos` at time `t`
  /// (>= 1.0; overlapping brownouts take the worst multiplier).
  [[nodiscard]] double processing_multiplier(const geo::LatLon& pos,
                                             Duration t) const;

  /// True when `provider` is inside an outage window at time `t`.
  [[nodiscard]] bool provider_down(std::string_view provider,
                                   Duration t) const;

  /// True when any loss spike or blackout episode currently touches the
  /// a<->b path — the gate deciding whether the retry state machines run
  /// their per-attempt logic or the calibrated baseline.
  [[nodiscard]] bool affects_path(const geo::LatLon& a,
                                  const geo::LatLon& b, Duration t) const;

  /// Realized episodes, for observability exports (series fault-window
  /// occupancy, health reports). Read-only: queries above stay the only
  /// consumers on the simulation path.
  [[nodiscard]] const std::vector<LossSpikeEpisode>& loss_spikes() const {
    return loss_spikes_;
  }
  [[nodiscard]] const std::vector<BlackoutEpisode>& blackouts() const {
    return blackouts_;
  }
  [[nodiscard]] const std::vector<BrownoutEpisode>& brownouts() const {
    return brownouts_;
  }
  [[nodiscard]] const std::vector<ProviderOutageEpisode>& provider_outages()
      const {
    return provider_outages_;
  }

  /// Samples a plan from `config`: each episode class realizes with its
  /// configured probability, centered on one of the session's `focal`
  /// sites, with the window start uniform in [0, start_max). Provider
  /// outages draw once per name in `providers`, in order. Deterministic
  /// in (rng seed, config, focal, providers); a disabled config returns
  /// an empty plan without consuming draws.
  [[nodiscard]] static FaultPlan sample(const FaultPlanConfig& config,
                                        std::span<const geo::LatLon> focal,
                                        std::span<const std::string> providers,
                                        Rng rng);

  /// Appends the episodes of `config`'s recurring schedules that overlap
  /// the session's campaign-time interval
  /// [campaign_start, campaign_start + horizon), with windows translated
  /// into the session's own epoch (campaign time minus campaign_start).
  /// Pure arithmetic — no RNG draws — so the realized episodes are a
  /// function of (config, campaign_start, blackout_phase) only, which is
  /// what keeps sharded campaigns bit-identical: campaign_start is a pure
  /// function of the session slot.
  void append_recurring_episodes(const FaultPlanConfig& config,
                                 Duration campaign_start, Duration horizon,
                                 std::span<const std::string> providers,
                                 const geo::LatLon& region_center,
                                 Duration blackout_phase);

 private:
  std::vector<LossSpikeEpisode> loss_spikes_;
  std::vector<BlackoutEpisode> blackouts_;
  std::vector<BrownoutEpisode> brownouts_;
  std::vector<ProviderOutageEpisode> provider_outages_;
};

}  // namespace dohperf::netsim
