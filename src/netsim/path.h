// A routed site pair: the layer-0 channel every connection rides on.
//
// Path owns the per-direction framing overhead (e.g. IP+UDP headers for
// datagram exchanges) and delegates delivery, trace capture and the
// loss/retry state machine to its NetCtx, so flow code never sums header
// bytes or calls NetCtx::hop by hand.
#pragma once

#include "netsim/netctx.h"

namespace dohperf::netsim {

class Path {
 public:
  Path(NetCtx& net, Site a, Site b)
      : net_(&net), a_(std::move(a)), b_(std::move(b)) {}

  /// Per-message framing bytes added in each direction (default none).
  void set_framing(std::size_t forward_bytes, std::size_t backward_bytes) {
    forward_framing_ = forward_bytes;
    backward_framing_ = backward_bytes;
  }

  /// One message a -> b; completes at arrival (captured by the NetCtx's
  /// trace sink, if any).
  Task<void> send(std::size_t payload_bytes) const {
    return net_->hop(a_, b_, payload_bytes + forward_framing_);
  }

  /// One message b -> a.
  Task<void> recv(std::size_t payload_bytes) const {
    return net_->hop(b_, a_, payload_bytes + backward_framing_);
  }

  /// Runs the datagram retry state machine for one exchange on this
  /// path: resolves once a copy of the datagram is cleared for delivery
  /// (charging any retransmit timers spent), or gives up per `policy`.
  [[nodiscard]] Task<RetryOutcome> deliver_with_retry(
      RetryPolicy policy) const {
    return net_->await_datagram_delivery(a_, b_, policy);
  }

  [[nodiscard]] const Site& a() const { return a_; }
  [[nodiscard]] const Site& b() const { return b_; }
  [[nodiscard]] NetCtx& net() const { return *net_; }
  [[nodiscard]] std::size_t forward_framing() const {
    return forward_framing_;
  }
  [[nodiscard]] std::size_t backward_framing() const {
    return backward_framing_;
  }

 private:
  NetCtx* net_;
  Site a_;
  Site b_;
  std::size_t forward_framing_ = 0;
  std::size_t backward_framing_ = 0;
};

}  // namespace dohperf::netsim
