#include "netsim/faultplan.h"

#include <algorithm>

namespace dohperf::netsim {
namespace {

bool within(const geo::LatLon& pos, const geo::LatLon& center,
            double radius_miles) {
  return geo::distance_miles(pos, center) <= radius_miles;
}

}  // namespace

FaultPlanConfig FaultPlanConfig::canonical() {
  FaultPlanConfig config;
  config.loss_spike_probability = 0.25;
  config.blackout_probability = 0.05;
  config.brownout_probability = 0.10;
  config.provider_outage_probability = 0.02;
  return config;
}

void FaultPlan::add_loss_spike(LossSpikeEpisode episode) {
  loss_spikes_.push_back(episode);
}

void FaultPlan::add_blackout(BlackoutEpisode episode) {
  blackouts_.push_back(episode);
}

void FaultPlan::add_brownout(BrownoutEpisode episode) {
  brownouts_.push_back(episode);
}

void FaultPlan::add_provider_outage(ProviderOutageEpisode episode) {
  provider_outages_.push_back(std::move(episode));
}

double FaultPlan::extra_loss(const geo::LatLon& pos, Duration t) const {
  double survival = 1.0;
  for (const LossSpikeEpisode& episode : loss_spikes_) {
    if (episode.window.covers(t) &&
        within(pos, episode.center, episode.radius_miles)) {
      survival *= 1.0 - episode.extra_loss;
    }
  }
  return 1.0 - survival;
}

bool FaultPlan::link_blacked_out(const geo::LatLon& a, const geo::LatLon& b,
                                 Duration t) const {
  for (const BlackoutEpisode& episode : blackouts_) {
    if (!episode.window.covers(t)) continue;
    const bool forward = within(a, episode.a, episode.a_radius_miles) &&
                         within(b, episode.b, episode.b_radius_miles);
    const bool reverse = within(b, episode.a, episode.a_radius_miles) &&
                         within(a, episode.b, episode.b_radius_miles);
    if (forward || reverse) return true;
  }
  return false;
}

double FaultPlan::processing_multiplier(const geo::LatLon& pos,
                                        Duration t) const {
  double multiplier = 1.0;
  for (const BrownoutEpisode& episode : brownouts_) {
    if (episode.window.covers(t) &&
        within(pos, episode.center, episode.radius_miles)) {
      multiplier = std::max(multiplier, episode.multiplier);
    }
  }
  return multiplier;
}

bool FaultPlan::provider_down(std::string_view provider, Duration t) const {
  for (const ProviderOutageEpisode& episode : provider_outages_) {
    if (episode.window.covers(t) && episode.provider == provider) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::affects_path(const geo::LatLon& a, const geo::LatLon& b,
                             Duration t) const {
  for (const LossSpikeEpisode& episode : loss_spikes_) {
    if (episode.window.covers(t) &&
        (within(a, episode.center, episode.radius_miles) ||
         within(b, episode.center, episode.radius_miles))) {
      return true;
    }
  }
  return link_blacked_out(a, b, t);
}

void FaultPlan::append_recurring_episodes(
    const FaultPlanConfig& config, Duration campaign_start, Duration horizon,
    std::span<const std::string> providers, const geo::LatLon& region_center,
    Duration blackout_phase) {
  // Emits every k >= 0 whose window [phase + k*period, +duration)
  // overlaps [campaign_start, campaign_start + horizon), translated into
  // session time. Pure integer arithmetic on microsecond ticks.
  const auto each_overlap = [&](Duration phase, Duration period,
                                Duration duration, auto&& emit) {
    if (period <= Duration::zero() || duration <= Duration::zero()) return;
    const std::int64_t p = period.count();
    const std::int64_t lo = (campaign_start - phase - duration).count();
    const std::int64_t hi = (campaign_start + horizon - phase).count();
    if (hi <= 0) return;
    // Smallest k with window end past campaign_start, first k whose
    // start precedes the horizon.
    const std::int64_t k_min = lo >= 0 ? lo / p + 1 : 0;
    const std::int64_t k_max = (hi - 1) / p;
    for (std::int64_t k = k_min; k <= k_max; ++k) {
      FaultWindow window;
      window.start = phase + period * k - campaign_start;
      window.end = window.start + duration;
      emit(window);
    }
  };

  for (std::size_t i = 0; i < providers.size(); ++i) {
    // Provider i's period scales with its index, so outage cadence — and
    // therefore long-run availability — differs per provider.
    each_overlap(config.provider_outage_stagger * static_cast<int>(i),
                 config.provider_outage_period * static_cast<int>(i + 1),
                 config.provider_outage_duration, [&](FaultWindow window) {
                   add_provider_outage(
                       ProviderOutageEpisode{window, providers[i]});
                 });
  }
  if (config.regional_blackout_period > Duration::zero()) {
    const Duration phase{blackout_phase.count() %
                         config.regional_blackout_period.count()};
    each_overlap(phase, config.regional_blackout_period,
                 config.regional_blackout_duration, [&](FaultWindow window) {
                   BlackoutEpisode episode;
                   episode.window = window;
                   episode.a = region_center;
                   episode.a_radius_miles =
                       config.regional_blackout_radius_miles;
                   add_blackout(episode);
                 });
  }
}

FaultPlan FaultPlan::sample(const FaultPlanConfig& config,
                            std::span<const geo::LatLon> focal,
                            std::span<const std::string> providers,
                            Rng rng) {
  FaultPlan plan;
  if (!config.enabled()) return plan;

  // Draw order is part of the determinism contract: spike, blackout,
  // brownout, then one draw per provider name in the given order.
  const auto pick_focal = [&]() -> geo::LatLon {
    const auto i = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(focal.size()) - 1));
    return focal[i];
  };
  const auto pick_start = [&](Duration start_max) -> Duration {
    return from_ms(rng.uniform(0.0, to_ms(start_max)));
  };

  if (!focal.empty()) {
    if (config.loss_spike_probability > 0.0 &&
        rng.bernoulli(config.loss_spike_probability)) {
      LossSpikeEpisode episode;
      episode.center = pick_focal();
      episode.radius_miles = config.spike_radius_miles;
      episode.extra_loss = config.spike_extra_loss;
      episode.window.start = pick_start(config.spike_start_max);
      episode.window.end = episode.window.start + config.spike_duration;
      plan.add_loss_spike(episode);
    }
    if (config.blackout_probability > 0.0 &&
        rng.bernoulli(config.blackout_probability)) {
      BlackoutEpisode episode;
      episode.a = pick_focal();
      episode.a_radius_miles = config.blackout_radius_miles;
      episode.window.start = pick_start(config.blackout_start_max);
      episode.window.end = episode.window.start + config.blackout_duration;
      plan.add_blackout(episode);
    }
    if (config.brownout_probability > 0.0 &&
        rng.bernoulli(config.brownout_probability)) {
      BrownoutEpisode episode;
      episode.center = pick_focal();
      episode.radius_miles = config.brownout_radius_miles;
      episode.multiplier = config.brownout_multiplier;
      episode.window.start = pick_start(config.brownout_start_max);
      episode.window.end = episode.window.start + config.brownout_duration;
      plan.add_brownout(episode);
    }
  }

  if (config.provider_outage_probability > 0.0) {
    for (const std::string& provider : providers) {
      if (rng.bernoulli(config.provider_outage_probability)) {
        ProviderOutageEpisode episode;
        episode.provider = provider;
        // Whole-session outage: the provider is dark from the first
        // request to the last.
        episode.window.start = Duration::zero();
        episode.window.end = Duration::max();
        plan.add_provider_outage(std::move(episode));
      }
    }
  }

  return plan;
}

}  // namespace dohperf::netsim
