#include "netsim/latency.h"

#include <algorithm>
#include <cmath>

namespace dohperf::netsim {

double LatencyModel::expected_one_way_ms(const Site& a, const Site& b,
                                         std::size_t bytes) const {
  const double dist_km = geo::distance_km(a.position, b.position);
  // Paths inherit the worse indirectness of their two endpoints, softened
  // geometrically: a well-connected cloud PoP partially compensates for a
  // poorly-connected eyeball network, but not fully.
  const double inflation =
      std::sqrt(std::max(1.0, a.route_inflation) *
                std::max(1.0, b.route_inflation));
  const double propagation_ms = dist_km / cfg_.km_per_ms * inflation;
  const double serialization_ms =
      static_cast<double>(bytes) / 1024.0 * cfg_.per_kb_ms;
  const double total =
      propagation_ms + a.lastmile_ms + b.lastmile_ms + serialization_ms;
  return std::max(cfg_.min_one_way_ms, total);
}

Duration LatencyModel::one_way(const Site& a, const Site& b,
                               std::size_t bytes, Rng& rng) const {
  const double base = expected_one_way_ms(a, b, bytes);
  const double sigma = std::hypot(a.jitter_sigma, b.jitter_sigma);
  const double jittered = rng.lognormal_median(base, sigma);
  return from_ms(std::max(cfg_.min_one_way_ms, jittered));
}

double LatencyModel::expected_rtt_ms(const Site& a, const Site& b,
                                     std::size_t bytes) const {
  return 2.0 * expected_one_way_ms(a, b, bytes);
}

}  // namespace dohperf::netsim
