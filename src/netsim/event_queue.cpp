#include "netsim/event_queue.h"

#include <utility>

namespace dohperf::netsim {

void EventQueue::push(SimTime at, Callback fn) {
  Event event{at, next_seq_++, std::move(fn)};
  // Hole-based sift-up: shift parents down into the hole instead of
  // swapping, so each displaced event moves exactly once.
  std::size_t hole = heap_.size();
  heap_.emplace_back();
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 2;
    if (!before(event, heap_[parent])) break;
    heap_[hole] = std::move(heap_[parent]);
    hole = parent;
  }
  heap_[hole] = std::move(event);
}

EventQueue::Callback EventQueue::pop() {
  Callback fn = std::move(heap_.front().fn);
  Event tail = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    // Hole-based sift-down of the detached tail element from the root.
    const std::size_t n = heap_.size();
    std::size_t hole = 0;
    for (;;) {
      std::size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], tail)) break;
      heap_[hole] = std::move(heap_[child]);
      hole = child;
    }
    heap_[hole] = std::move(tail);
  }
  return fn;
}

}  // namespace dohperf::netsim
