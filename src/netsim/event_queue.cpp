#include "netsim/event_queue.h"

#include <memory>
#include <utility>

namespace dohperf::netsim {

void EventQueue::push(SimTime at, Callback fn) {
  heap_.push(Event{at, next_seq_++,
                   std::make_shared<Callback>(std::move(fn))});
}

EventQueue::Callback EventQueue::pop() {
  Callback fn = std::move(*heap_.top().fn);
  heap_.pop();
  return fn;
}

}  // namespace dohperf::netsim
