// Assembles the full simulated ecosystem the campaign measures: the
// authoritative server and web server for "a.com", per-country ISP
// resolvers and client pools, the four DoH providers with their PoP
// resolver fleets, the BrightData-like proxy overlay, the RIPE Atlas-like
// probe network, and the Maxmind-like geolocation database.
#pragma once

#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "anycast/provider.h"
#include "dns/name.h"
#include "geo/geolocation.h"
#include "netsim/netctx.h"
#include "proxy/brightdata.h"
#include "proxy/ripe_atlas.h"
#include "resolver/authoritative.h"
#include "resolver/doh_server.h"
#include "transport/tls.h"
#include "world/sites.h"

namespace dohperf::world {

/// Recorded constructor parameters for one recursive resolver, captured at
/// world build time so per-shard replicas can be instantiated later
/// without consuming any build randomness.
struct ResolverSpec {
  std::string name;
  netsim::Site site;
  std::uint32_t address = 0;
  netsim::Duration processing{};
  resolver::EcsPolicy ecs = resolver::EcsPolicy::kNever;
};

/// Recorded constructor parameters for one DoH front-end + backend pair.
struct DohServerSpec {
  std::string hostname;
  netsim::Site frontend;
  ResolverSpec backend;
};

/// Per-shard mutable simulation state: a private clock + event queue and a
/// private copy of every server whose internal state evolves while a
/// campaign runs (the authoritative server, the DoH fleets, and the ISP
/// resolvers with their caches). The immutable world — geo tables, PoP
/// catalogs, provider configs, the exit-node population, the geolocation
/// database — stays inside WorldModel and is shared read-only across any
/// number of concurrently-running SimContexts.
class SimContext {
 public:
  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  [[nodiscard]] netsim::Simulator& sim() { return sim_; }
  [[nodiscard]] resolver::AuthoritativeServer& authority() {
    return *authority_;
  }
  [[nodiscard]] resolver::DohServer& doh_server(std::size_t provider_index,
                                                std::size_t pop_index) {
    return *doh_.at(provider_index).at(pop_index);
  }
  /// This shard's clone of a world-owned ISP resolver (exit nodes and
  /// Atlas probes point at the world's instances; measurements must run
  /// against the shard-local copies).
  [[nodiscard]] resolver::RecursiveResolver* local(
      const resolver::RecursiveResolver* world_resolver) const {
    return remap_.at(world_resolver);
  }

 private:
  friend class WorldModel;
  SimContext() = default;

  netsim::Simulator sim_;
  std::unique_ptr<resolver::AuthoritativeServer> authority_;
  std::vector<std::vector<std::unique_ptr<resolver::DohServer>>> doh_;
  std::deque<resolver::RecursiveResolver> resolvers_;
  std::unordered_map<const resolver::RecursiveResolver*,
                     resolver::RecursiveResolver*>
      remap_;
};

/// World construction parameters.
struct WorldConfig {
  std::uint64_t seed = 42;
  /// Scales per-country client-pool sizes (use < 1 for fast tests).
  double client_scale = 1.0;
  /// Restrict the world to these ISO codes (empty = whole world table).
  std::vector<std::string> only_countries;
  /// Couple network parameters to country covariates (ablation switch).
  bool couple_infra = true;
  /// TLS version used by DoH measurements (paper headline: 1.3).
  transport::TlsVersion tls_version = transport::TlsVersion::kTls13;
  /// Ablation: route every client to its geographically nearest PoP,
  /// overriding the calibrated anycast-inefficiency mixtures.
  bool perfect_anycast = false;
  /// Metro hosting the study's web + authoritative servers. The paper
  /// used a single US location and flags varying it as future work
  /// (Section 7); any city from geo::city_table() works here.
  std::string authority_city = "Ashburn";
  /// Probability that BrightData's country label for a node is wrong
  /// (paper discards 0.88% of data points on Maxmind mismatch).
  double mislabel_rate = 0.0088;
  /// Probability that a client's default resolver is hosted far away
  /// (ISPs backhauling DNS abroad, satellite operators, misconfigured
  /// CPE). These clients are the bulk of the paper's 19.1% for whom even
  /// a first DoH query beats Do53.
  double remote_dns_rate = 0.18;
};

/// The assembled world. Not copyable or movable: internal components hold
/// pointers to each other.
class WorldModel {
 public:
  explicit WorldModel(WorldConfig config = {});
  WorldModel(const WorldModel&) = delete;
  WorldModel& operator=(const WorldModel&) = delete;

  /// Fresh execution context over this world's simulator/latency/rng.
  [[nodiscard]] netsim::NetCtx ctx() {
    return netsim::NetCtx{sim_, latency_, rng_};
  }

  [[nodiscard]] netsim::Simulator& sim() { return sim_; }
  [[nodiscard]] netsim::Rng& rng() { return rng_; }
  [[nodiscard]] const netsim::LatencyModel& latency() const {
    return latency_;
  }
  [[nodiscard]] const WorldConfig& config() const { return config_; }

  [[nodiscard]] resolver::AuthoritativeServer& authority() {
    return *authority_;
  }
  /// Where the study's measurement client runs (paper: Illinois, USA).
  [[nodiscard]] const netsim::Site& measurement_client() const {
    return measurement_client_;
  }
  /// The study zone origin ("a.com").
  [[nodiscard]] const dns::DomainName& origin() const { return origin_; }

  [[nodiscard]] std::span<anycast::Provider> providers() {
    return providers_;
  }
  /// DoH front-end serving PoP `pop_index` of provider `provider_index`.
  [[nodiscard]] resolver::DohServer& doh_server(std::size_t provider_index,
                                                std::size_t pop_index);

  [[nodiscard]] proxy::BrightDataNetwork& brightdata() {
    return brightdata_;
  }
  [[nodiscard]] proxy::RipeAtlas& atlas() { return atlas_; }
  [[nodiscard]] geo::GeolocationService& maxmind() { return maxmind_; }

  /// ISO codes of countries instantiated in this world.
  [[nodiscard]] std::span<const std::string> countries() const {
    return country_codes_;
  }
  /// ISP resolvers of `iso2` (empty span if country absent).
  [[nodiscard]] std::span<resolver::RecursiveResolver* const>
  isp_resolvers(const std::string& iso2) const;

  /// Total enrolled exit nodes.
  [[nodiscard]] std::size_t exit_count() const {
    return brightdata_.exit_count();
  }

  /// Builds a fresh per-shard simulation context whose servers replicate
  /// this world's at campaign start — same sites, addresses, processing
  /// delays, zone data, and pre-warmed caches — but whose mutable state
  /// (clock, event queue, caches, counters) is private. Thread-safe:
  /// only reads the recorded build specs.
  [[nodiscard]] std::unique_ptr<SimContext> make_replica() const;

 private:
  void build_authority();
  void build_providers();
  void build_country(const geo::Country& country);
  /// Inserts the never-expiring provider-hostname A records (the
  /// ultra-hot bootstrap names) into `r`'s cache.
  void prewarm_bootstrap_names(resolver::RecursiveResolver& r,
                               netsim::SimTime now) const;

  WorldConfig config_;
  netsim::Simulator sim_;
  netsim::LatencyModel latency_;
  netsim::Rng rng_;

  dns::DomainName origin_;
  netsim::Site measurement_client_;
  std::unique_ptr<resolver::AuthoritativeServer> authority_;

  std::vector<anycast::Provider> providers_;
  /// doh_servers_[provider][pop].
  std::vector<std::vector<std::unique_ptr<resolver::DohServer>>> doh_servers_;
  /// Build-time records mirroring doh_servers_ / isp_resolvers_, consumed
  /// by make_replica().
  std::vector<std::vector<DohServerSpec>> doh_specs_;
  std::vector<ResolverSpec> isp_specs_;
  /// (hostname, anycast VIP) pairs pre-warmed into every ISP resolver.
  std::vector<std::pair<dns::DomainName, std::uint32_t>> bootstrap_names_;

  /// Stable-address storage for ISP resolvers.
  std::deque<resolver::RecursiveResolver> isp_resolvers_;
  /// Flat view of every ISP resolver built so far (for clients whose ISP
  /// backhauls DNS to a remote resolver).
  std::vector<resolver::RecursiveResolver*> all_resolvers_;
  std::unordered_map<std::string, std::vector<resolver::RecursiveResolver*>>
      isp_by_country_;
  std::vector<std::string> country_codes_;

  proxy::BrightDataNetwork brightdata_;
  proxy::RipeAtlas atlas_;
  geo::GeolocationService maxmind_;

  std::uint32_t next_address_ = 1000;
  geo::NetPrefix next_prefix_ = 0x0A000000;
};

}  // namespace dohperf::world
