#include "world/sites.h"

#include <algorithm>
#include <cmath>
#include <string_view>

namespace dohperf::world {
namespace {

/// Deterministic unit-interval value from a country code (FNV-1a based);
/// used for stable cross-run heterogeneity like ISP transit quality.
double unit_hash(std::string_view iso2) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : iso2) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Global-median profile used when infrastructure coupling is disabled.
CountryNetProfile uniform_profile() {
  CountryNetProfile p;
  p.lastmile_median_ms = 9.0;
  p.route_inflation = 1.45;
  p.jitter_sigma = 0.07;
  p.resolver_processing_ms = 3.0;
  p.isp_transit_penalty = 1.0;
  return p;
}

}  // namespace

CountryNetProfile profile_for(const geo::Country& country,
                              bool couple_infra) {
  if (!couple_infra) return uniform_profile();

  CountryNetProfile p;
  const double bw = std::max(1.0, country.bandwidth_mbps);
  const double ases = std::max(1.0, static_cast<double>(country.num_ases));

  // Last mile: dominated by access technology, which tracks nationwide
  // broadband speed (DSL/satellite at the low end, FTTH at the top).
  // Below ~5 Mbps a share of links are geostationary-satellite or heavily
  // congested, adding a large constant.
  p.lastmile_median_ms = std::clamp(2.0 + 170.0 / bw, 3.0, 90.0);
  if (bw < 5.0) p.lastmile_median_ms += 90.0 * (1.0 - bw / 5.0);

  // Transit indirectness: countries with few ASes have few exit paths and
  // routes detour through distant hubs.
  p.route_inflation = std::clamp(5.05 - 0.78 * std::log10(2.0 + ases), 1.15,
                                 4.50);

  // Poorly provisioned networks are also noisier.
  p.jitter_sigma =
      0.05 + 0.09 * (p.route_inflation - 1.15) / 3.20;

  // ISP resolver boxes: mildly slower in low-investment markets. Kept
  // weak on purpose — if resolver processing tracked bandwidth strongly it
  // would cancel the DoH-vs-Do53 multiplier correlation with bandwidth
  // that the paper's Table 4 hinges on.
  p.resolver_processing_ms = std::clamp(2.5 + 60.0 / bw, 3.0, 28.0);

  // Stable per-country ISP peering quality, heavy-tailed so that a
  // minority of countries (the paper finds 8.8%) have ISP resolver
  // transit bad enough that switching to a well-peered anycast PoP wins
  // outright. A few showcase countries the paper names are pinned:
  // Brazil saw a 33% country-level speedup and Indonesia a 179 ms drop
  // when switching to DoH.
  // The penalty is gated by bandwidth: the paper observes that clients
  // who gain from DoH sit almost exclusively in well-provisioned
  // countries (84% with fast national broadband), i.e. bad ISP-resolver
  // peering is a rich-country pathology relative to anycast quality.
  const double gate_t = std::min(1.0, bw / 50.0);
  const double gate = gate_t * gate_t;
  if (country.iso2 == "BR") {
    p.isp_transit_penalty = 2.8;  // pinned: paper reports a 33% speedup
  } else if (country.iso2 == "ID") {
    p.isp_transit_penalty = 2.6;  // pinned: paper reports a 179 ms drop
  } else {
    const double u = unit_hash(country.iso2);
    p.isp_transit_penalty = 1.0 + 2.2 * std::pow(u, 4.0) * gate;
  }

  return p;
}

netsim::Site client_site(const geo::Country& country, netsim::Rng& rng,
                         bool couple_infra) {
  const CountryNetProfile p = profile_for(country, couple_infra);

  netsim::Site site;
  // Scatter clients within a metro-to-province radius of the centroid.
  const double bearing = rng.uniform(0.0, 360.0);
  const double radius_km = rng.exponential(120.0);
  site.position = geo::destination(country.centroid, bearing,
                                   std::min(radius_km, 600.0));
  site.lastmile_ms = rng.lognormal_median(p.lastmile_median_ms, 0.45);
  site.route_inflation = p.route_inflation * rng.lognormal_median(1.0, 0.06);
  site.jitter_sigma = p.jitter_sigma;
  // Residential UDP loss grows with congestion / access quality.
  site.loss_rate = std::clamp(
      0.002 + 0.010 * (p.route_inflation - 1.15) / 3.2, 0.002, 0.02);
  return site;
}

netsim::Site isp_resolver_site(const geo::Country& country, netsim::Rng& rng,
                               bool couple_infra) {
  const CountryNetProfile p = profile_for(country, couple_infra);

  netsim::Site site;
  const double bearing = rng.uniform(0.0, 360.0);
  site.position = geo::destination(country.centroid, bearing,
                                   rng.uniform(0.0, 150.0));
  site.lastmile_ms = 1.2;  // resolver sits in an ISP POP
  // Individual resolver deployments vary a lot: some ISPs host well-
  // peered anycast farms, others a single box behind congested transit.
  site.route_inflation =
      p.route_inflation * p.isp_transit_penalty *
      rng.lognormal_median(1.0, 0.22);
  site.jitter_sigma = p.jitter_sigma;
  site.loss_rate = std::clamp(
      0.001 + 0.010 * (site.route_inflation - 1.15) / 3.2, 0.001, 0.025);
  return site;
}

int reachable_clients(const geo::Country& country, netsim::Rng& rng) {
  // BrightData is unusable in these markets (censorship or policy); the
  // paper lists China, North Korea, Saudi Arabia and Oman among the 25
  // excluded countries/territories.
  const std::string_view iso2 = country.iso2;
  if (iso2 == "CN" || iso2 == "KP") return 0;
  if (iso2 == "SA" || iso2 == "OM" || iso2 == "SY" || iso2 == "CU") {
    return static_cast<int>(rng.uniform_int(0, 6));
  }

  // Pool size tracks Internet-population proxies: AS count (breadth of
  // networks) and bandwidth (consumer uptake of a bandwidth-sharing VPN).
  const double ases = std::max(1.0, static_cast<double>(country.num_ases));
  const double bw = std::max(1.0, country.bandwidth_mbps);
  const double score = std::log2(2.0 + ases) * std::pow(bw, 0.25);
  const double noisy = score * rng.lognormal_median(1.0, 0.25);
  // Superlinear in the score so that tiny territories fall below the
  // 10-unique-clients analysis threshold, as ~25 did in the paper.
  const int count =
      static_cast<int>(std::lround(std::pow(noisy, 1.35) * 3.1 - 2.0));
  return std::clamp(count, 0, 282);
}

int isp_resolver_count(const geo::Country& country) {
  return std::clamp(1 + country.num_ases / 250, 1, 4);
}

}  // namespace dohperf::world
