#include "world/world_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dns/zone.h"
#include "geo/cities.h"

namespace dohperf::world {
namespace {

/// Synthetic anycast service addresses for the four providers' DoH VIPs,
/// pre-warmed into every ISP resolver cache so exit-node bootstrap
/// lookups (t3+t4) are cache hits, as they would be for cloudflare-dns.com
/// in the wild.
std::uint32_t provider_vip(std::size_t provider_index) {
  return 0x01010101u + static_cast<std::uint32_t>(provider_index) * 0x01010000u;
}

constexpr std::uint32_t kWebServerAddress = 0xCF000001;  // the a.com host

/// Instantiates a recursive resolver from its recorded build parameters.
resolver::RecursiveResolver resolver_from_spec(
    const ResolverSpec& spec, resolver::AuthoritativeServer* authority) {
  resolver::RecursiveResolver r(spec.name, spec.site, spec.address,
                                authority, spec.processing);
  r.set_ecs_policy(spec.ecs);
  return r;
}

/// Instantiates a DoH server (front-end + co-located backend) from specs.
std::unique_ptr<resolver::DohServer> doh_from_spec(
    const DohServerSpec& spec, resolver::AuthoritativeServer* authority) {
  return std::make_unique<resolver::DohServer>(
      spec.hostname, spec.frontend,
      resolver_from_spec(spec.backend, authority));
}

}  // namespace

WorldModel::WorldModel(WorldConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      origin_(dns::DomainName::parse("a.com")) {
  build_authority();
  build_providers();

  for (const geo::Country& country : geo::world_table()) {
    if (!config_.only_countries.empty()) {
      const bool selected =
          std::find(config_.only_countries.begin(),
                    config_.only_countries.end(),
                    country.iso2) != config_.only_countries.end();
      if (!selected) continue;
    }
    build_country(country);
  }
}

void WorldModel::build_authority() {
  // Paper: the web server and BIND9 authoritative name server live in the
  // USA (we default to Ashburn, the densest US hosting metro). The city
  // is configurable because the paper flags varying the name-server
  // location as future work.
  const geo::City* host = geo::find_city(config_.authority_city);
  if (host == nullptr) {
    throw std::invalid_argument("unknown authority city: " +
                                config_.authority_city);
  }

  netsim::Site auth_site;
  auth_site.position = host->position;
  auth_site.lastmile_ms = 0.5;
  auth_site.route_inflation = 1.08;
  auth_site.jitter_sigma = 0.04;

  authority_ = std::make_unique<resolver::AuthoritativeServer>(
      dns::Zone::make_study_zone(origin_, kWebServerAddress), auth_site);

  // Measurement client: a university network in Illinois.
  const geo::City* chicago = geo::find_city("Chicago");
  if (chicago == nullptr) throw std::logic_error("city table lacks Chicago");
  measurement_client_.position = chicago->position;
  measurement_client_.lastmile_ms = 1.0;
  measurement_client_.route_inflation = 1.10;
  measurement_client_.jitter_sigma = 0.05;
}

void WorldModel::build_providers() {
  if (config_.perfect_anycast) {
    // Ablation: keep catalogs and cost profiles but route optimally.
    std::vector<anycast::ProviderConfig> configs = {
        anycast::cloudflare_config(), anycast::google_config(),
        anycast::nextdns_config(), anycast::quad9_config()};
    for (auto& cfg : configs) {
      cfg.routing = anycast::RoutingParams{};  // p_nearest = 1
    }
    providers_.reserve(configs.size());
    providers_.emplace_back(configs[0], anycast::cloudflare_pops());
    providers_.emplace_back(configs[1], anycast::google_pops());
    providers_.emplace_back(configs[2], anycast::nextdns_pops());
    providers_.emplace_back(configs[3], anycast::quad9_pops());
  } else {
    providers_ = anycast::studied_providers();
  }
  doh_servers_.resize(providers_.size());
  doh_specs_.resize(providers_.size());

  bootstrap_names_.reserve(providers_.size());
  for (std::size_t p = 0; p < providers_.size(); ++p) {
    bootstrap_names_.emplace_back(
        dns::DomainName::parse(providers_[p].config().doh_hostname),
        provider_vip(p));
  }

  for (std::size_t p = 0; p < providers_.size(); ++p) {
    const anycast::Provider& provider = providers_[p];
    doh_servers_[p].reserve(provider.pops().size());
    doh_specs_[p].reserve(provider.pops().size());
    for (std::size_t i = 0; i < provider.pops().size(); ++i) {
      // The PoP's long-haul legs ride its host country's transit,
      // moderated by the provider's own peering (backbone_factor).
      const geo::Country* host =
          geo::find_country(provider.pops()[i].country_iso2);
      const CountryNetProfile host_profile =
          profile_for(*host, config_.couple_infra);
      DohServerSpec spec;
      spec.hostname = provider.config().doh_hostname;
      spec.frontend =
          provider.frontend_site(i, host_profile.route_inflation);
      spec.backend = ResolverSpec{
          provider.name() + "@" + provider.pops()[i].city,
          provider.backend_site(i, host_profile.route_inflation),
          next_address_++,
          netsim::from_ms(provider.config().processing_ms),
          provider.config().sends_ecs ? resolver::EcsPolicy::kForwardSlash24
                                      : resolver::EcsPolicy::kNever};
      doh_servers_[p].push_back(doh_from_spec(spec, authority_.get()));
      doh_specs_[p].push_back(std::move(spec));
    }
  }
}

void WorldModel::prewarm_bootstrap_names(resolver::RecursiveResolver& r,
                                         netsim::SimTime now) const {
  for (const auto& [host, vip] : bootstrap_names_) {
    dns::ResourceRecord a;
    a.name = host;
    a.ttl = 1000000000;  // never expires within a campaign
    a.rdata = dns::ARecord{vip};
    r.cache().insert(now, host, dns::RecordType::kA, {a});
  }
}

std::unique_ptr<SimContext> WorldModel::make_replica() const {
  auto ctx = std::unique_ptr<SimContext>(new SimContext);
  ctx->authority_ = std::make_unique<resolver::AuthoritativeServer>(
      authority_->zone(), authority_->site(), authority_->processing_delay());

  ctx->doh_.resize(doh_specs_.size());
  for (std::size_t p = 0; p < doh_specs_.size(); ++p) {
    ctx->doh_[p].reserve(doh_specs_[p].size());
    for (const DohServerSpec& spec : doh_specs_[p]) {
      ctx->doh_[p].push_back(doh_from_spec(spec, ctx->authority_.get()));
    }
  }

  for (std::size_t i = 0; i < isp_specs_.size(); ++i) {
    ctx->resolvers_.push_back(
        resolver_from_spec(isp_specs_[i], ctx->authority_.get()));
    prewarm_bootstrap_names(ctx->resolvers_.back(), ctx->sim_.now());
    ctx->remap_[&isp_resolvers_[i]] = &ctx->resolvers_.back();
  }
  return ctx;
}

resolver::DohServer& WorldModel::doh_server(std::size_t provider_index,
                                            std::size_t pop_index) {
  return *doh_servers_.at(provider_index).at(pop_index);
}

std::span<resolver::RecursiveResolver* const> WorldModel::isp_resolvers(
    const std::string& iso2) const {
  const auto it = isp_by_country_.find(iso2);
  if (it == isp_by_country_.end()) return {};
  return it->second;
}

void WorldModel::build_country(const geo::Country& country) {
  netsim::Rng country_rng = rng_.split(country.iso2);
  const std::string iso2(country.iso2);

  // --- ISP resolvers ------------------------------------------------
  const CountryNetProfile profile =
      profile_for(country, config_.couple_infra);
  const int n_resolvers = isp_resolver_count(country);
  std::vector<resolver::RecursiveResolver*> resolvers;
  for (int i = 0; i < n_resolvers; ++i) {
    double processing_ms =
        country_rng.lognormal_median(profile.resolver_processing_ms, 0.7);
    netsim::Site site =
        isp_resolver_site(country, country_rng, config_.couple_infra);
    // A sizeable minority of default resolvers are simply bad: overloaded
    // boxes behind congested transit. These are the clients for whom even
    // a first DoH query (handshake included) beats Do53 — the paper finds
    // 19.1% of clients in that situation, 84% of them in fast-broadband
    // countries, so the rate is gated by bandwidth.
    const double bad_rate =
        0.22 * std::min(1.0, country.bandwidth_mbps / 50.0) *
        std::min(1.0, country.bandwidth_mbps / 50.0);
    if (country_rng.bernoulli(bad_rate)) {
      processing_ms *= 6.0;
      site.route_inflation *= 2.5;
    }
    // ISP resolvers commonly forward ECS so CDNs can localise answers.
    ResolverSpec spec{iso2 + "-isp" + std::to_string(i), site,
                      next_address_++, netsim::from_ms(processing_ms),
                      resolver::EcsPolicy::kForwardSlash24};
    isp_resolvers_.push_back(resolver_from_spec(spec, authority_.get()));
    isp_specs_.push_back(std::move(spec));
    resolvers.push_back(&isp_resolvers_.back());
    all_resolvers_.push_back(&isp_resolvers_.back());
  }

  // Pre-warm each resolver's cache with the provider DoH hostnames; these
  // are among the hottest names on the Internet and never miss in
  // practice.
  for (resolver::RecursiveResolver* r : resolvers) {
    prewarm_bootstrap_names(*r, sim_.now());
  }

  isp_by_country_[iso2] = resolvers;
  country_codes_.push_back(iso2);

  // --- RIPE Atlas probes ---------------------------------------------
  // Volunteer probes concentrate where hobbyist infrastructure exists.
  const int n_probes =
      std::clamp(1 + country.num_ases / 40, 1, 12);
  if (country.num_ases >= 10) {
    for (int i = 0; i < n_probes; ++i) {
      proxy::AtlasProbe probe;
      probe.iso2 = iso2;
      probe.site = client_site(country, country_rng, config_.couple_infra);
      probe.default_resolver = resolvers[static_cast<std::size_t>(
          country_rng.uniform_int(0, n_resolvers - 1))];
      atlas_.register_probe(std::move(probe));
    }
  }

  // --- BrightData exit nodes ------------------------------------------
  const int pool = reachable_clients(country, country_rng);
  const int n_clients = static_cast<int>(
      std::lround(pool * std::max(0.0, config_.client_scale)));
  for (int i = 0; i < n_clients; ++i) {
    proxy::ExitNode node;
    node.advertised_iso2 = iso2;
    node.prefix = next_prefix_++;

    const bool mislabeled = country_rng.bernoulli(config_.mislabel_rate) &&
                            country_codes_.size() > 1;
    if (mislabeled) {
      // BrightData's IP->country database is wrong for this node: it
      // actually sits in a different (already-built) country.
      const auto& other_iso = country_codes_[static_cast<std::size_t>(
          country_rng.uniform_int(
              0, static_cast<std::int64_t>(country_codes_.size()) - 2))];
      const geo::Country* other = geo::find_country(other_iso);
      node.true_iso2 = other_iso;
      node.site = client_site(*other, country_rng, config_.couple_infra);
      const auto other_resolvers = isp_resolvers(other_iso);
      node.default_resolver = other_resolvers[static_cast<std::size_t>(
          country_rng.uniform_int(
              0, static_cast<std::int64_t>(other_resolvers.size()) - 1))];
    } else {
      node.true_iso2 = iso2;
      node.site = client_site(country, country_rng, config_.couple_infra);
      const double remote_rate =
          config_.remote_dns_rate *
          (0.4 + 0.6 * std::min(1.0, country.bandwidth_mbps / 40.0));
      if (country_rng.bernoulli(remote_rate) &&
          all_resolvers_.size() > static_cast<std::size_t>(n_resolvers)) {
        // DNS backhauled to a resolver somewhere else entirely.
        node.default_resolver = all_resolvers_[static_cast<std::size_t>(
            country_rng.uniform_int(
                0, static_cast<std::int64_t>(all_resolvers_.size()) - 1))];
      } else {
        node.default_resolver = resolvers[static_cast<std::size_t>(
            country_rng.uniform_int(0, n_resolvers - 1))];
      }
    }

    // The Maxmind-like database knows the true country (it is keyed by
    // the /24 the web server observes) but places the client with
    // /24-granularity scatter — the paper's distance analyses inherit
    // exactly this noise.
    const double geo_err_km =
        std::min(country_rng.exponential(35.0), 150.0);
    const geo::LatLon located = geo::destination(
        node.site.position, country_rng.uniform(0.0, 360.0), geo_err_km);
    maxmind_.add(node.prefix, geo::GeoRecord{node.true_iso2, located});
    brightdata_.enroll(std::move(node));
  }
}

}  // namespace dohperf::world
