#include "world/scenarios.h"

#include <vector>

namespace dohperf::world {
namespace {

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> out;

  {
    Scenario s;
    s.name = "paper-default";
    s.description = "the calibrated reproduction world (seed 42)";
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "uniform-world";
    s.description =
        "infrastructure coupling disabled: every country gets the "
        "global-median network parameters";
    s.config.couple_infra = false;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "perfect-anycast";
    s.description = "every client is routed to its nearest PoP";
    s.config.perfect_anycast = true;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "tls12";
    s.description = "DoH handshakes use TLS 1.2 (two round trips)";
    s.config.tls_version = transport::TlsVersion::kTls12;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "eu-authority";
    s.description = "the a.com web/NS host moves to Frankfurt";
    s.config.authority_city = "Frankfurt";
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "asia-authority";
    s.description = "the a.com web/NS host moves to Singapore";
    s.config.authority_city = "Singapore";
    out.push_back(s);
  }
  return out;
}

}  // namespace

std::span<const Scenario> scenarios() {
  static const std::vector<Scenario> all = build_scenarios();
  return all;
}

std::optional<WorldConfig> scenario_config(std::string_view name) {
  for (const Scenario& s : scenarios()) {
    if (s.name == name) return s.config;
  }
  return std::nullopt;
}

}  // namespace dohperf::world
