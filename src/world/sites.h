// Country-level network profiles.
//
// This is where the paper's explanatory variables enter the simulation:
// nationwide broadband speed shapes last-mile delay, AS count shapes route
// inflation (scarce transit => circuitous paths), and both shape jitter
// and ISP-resolver quality. Disabling the coupling (`couple_infra=false`)
// gives every country identical median parameters — the ablation that
// should erase the regression effects in Tables 4-6.
#pragma once

#include "geo/country.h"
#include "netsim/latency.h"
#include "netsim/random.h"

namespace dohperf::world {

/// Derived per-country medians.
struct CountryNetProfile {
  double lastmile_median_ms = 5.0;
  double route_inflation = 1.25;
  double jitter_sigma = 0.07;
  /// Median per-query processing time of the country's ISP resolvers.
  double resolver_processing_ms = 2.0;
  /// Extra inflation on ISP-resolver transit only (captures poorly-peered
  /// ISP resolvers; deterministic per country). This is what lets some
  /// countries *gain* from DoH, as the paper observed for 8.8% of
  /// countries (e.g. Brazil, Indonesia).
  double isp_transit_penalty = 1.0;
};

/// Computes the profile from World-Bank/Ookla/IPInfo-style covariates.
/// With `couple_infra == false` all countries get the global-median
/// profile (ablation mode).
[[nodiscard]] CountryNetProfile profile_for(const geo::Country& country,
                                            bool couple_infra = true);

/// A residential client site: near the country centroid with metro-scale
/// scatter, last-mile sampled around the country median.
[[nodiscard]] netsim::Site client_site(const geo::Country& country,
                                       netsim::Rng& rng,
                                       bool couple_infra = true);

/// An ISP recursive-resolver site in the country (datacenter-grade access,
/// country-grade + penalty transit).
[[nodiscard]] netsim::Site isp_resolver_site(const geo::Country& country,
                                             netsim::Rng& rng,
                                             bool couple_infra = true);

/// How many BrightData exit nodes the synthetic campaign can reach in the
/// country (paper: 10..282 per country, median 103; China/North Korea/
/// Saudi Arabia/Oman and 21 other territories fall below the 10-client
/// threshold).
[[nodiscard]] int reachable_clients(const geo::Country& country,
                                    netsim::Rng& rng);

/// Number of distinct ISP resolvers to instantiate for the country.
[[nodiscard]] int isp_resolver_count(const geo::Country& country);

}  // namespace dohperf::world
