// Named world scenarios: one-line access to the configurations the
// benches and ablations use, for the CLI and downstream users.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "world/world_model.h"

namespace dohperf::world {

/// A named, documented configuration.
struct Scenario {
  std::string_view name;
  std::string_view description;
  WorldConfig config;
};

/// The built-in scenarios:
///   paper-default    the calibrated reproduction world (seed 42)
///   uniform-world    infrastructure coupling disabled (ablation)
///   perfect-anycast  every client reaches its nearest PoP (ablation)
///   tls12            DoH over TLS 1.2 handshakes (ablation)
///   eu-authority     a.com hosted in Frankfurt (paper §7 limitation)
///   asia-authority   a.com hosted in Singapore
[[nodiscard]] std::span<const Scenario> scenarios();

/// Looks up a scenario by name; nullopt if unknown.
[[nodiscard]] std::optional<WorldConfig> scenario_config(
    std::string_view name);

}  // namespace dohperf::world
